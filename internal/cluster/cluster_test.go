package cluster_test

// End-to-end tests of the multi-node coordinator, run in-process over
// loopback TCP: equivalence of a federated cluster with a single server,
// and the failure paths the coordinator must handle (node down at connect,
// node death mid-batch with retry-with-exclusion, key-mismatch rejection).

import (
	"net"
	"slices"
	"strings"
	"testing"
	"time"

	"simcloud"
	"simcloud/internal/cluster"
	"simcloud/internal/core"
	"simcloud/internal/metric"
	"simcloud/internal/pivot"
	"simcloud/internal/server"
	"simcloud/internal/wire"
)

const (
	testPivots = 8
	testBucket = 64
)

// testWorld is a generated collection plus the data owner's secret key.
type testWorld struct {
	data *simcloud.Dataset
	key  *simcloud.Key
}

func newWorld(t *testing.T, n int) *testWorld {
	t.Helper()
	data := simcloud.ClusteredData(7, n, 12, 9, simcloud.L2())
	pivots := simcloud.SelectPivots(7, data.Dist, data.Objects, testPivots)
	key, err := simcloud.GenerateKey(pivots)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{data: data, key: key}
}

func nodeConfig(eager bool) simcloud.Config {
	cfg := simcloud.DefaultConfig(testPivots)
	cfg.BucketCapacity = testBucket
	cfg.EagerRootSplit = eager
	return cfg
}

// startServer starts an encrypted server and registers its teardown.
func startServer(t *testing.T, cfg simcloud.Config) *server.Server {
	t.Helper()
	srv, err := server.NewEncrypted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// startCluster starts n encrypted nodes plus a coordinator fronting them.
func startCluster(t *testing.T, n int, eager bool) ([]*server.Server, *cluster.Coordinator) {
	t.Helper()
	nodes := make([]*server.Server, n)
	addrs := make([]string, n)
	for i := range nodes {
		nodes[i] = startServer(t, nodeConfig(eager))
		addrs[i] = nodes[i].Addr()
	}
	coord, err := cluster.New(addrs, cluster.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return nodes, coord
}

func dial(t *testing.T, addr string, key *simcloud.Key) *core.EncryptedClient {
	t.Helper()
	client, err := core.DialEncrypted(addr, key, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// rawRoundTrip drives one frame exchange over a fresh connection — the
// white-box view of a server's candidate responses, bypassing client-side
// refinement so candidate order is observable.
func rawRoundTrip(t *testing.T, addr string, typ wire.MsgType, payload []byte) (wire.MsgType, []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, typ, payload); err != nil {
		t.Fatal(err)
	}
	respType, resp, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return respType, resp
}

// approxCandidateIDs returns the ranked approximate candidate ID list the
// server at addr serves for query q — the exact list the acceptance
// criterion compares across deployments.
func approxCandidateIDs(t *testing.T, addr string, w *testWorld, q metric.Vector, candSize int) []uint64 {
	t.Helper()
	perm := pivot.Permutation(w.key.Pivots().Distances(q))
	respType, resp := rawRoundTrip(t, addr, wire.MsgApproxPerm,
		wire.ApproxPermReq{Perm: perm, CandSize: uint32(candSize)}.Encode())
	if respType != wire.MsgCandidates {
		t.Fatalf("unexpected response %v", respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(m.Entries))
	for i, e := range m.Entries {
		ids[i] = e.ID
	}
	return ids
}

// firstCellIDs returns the most promising cell's entry IDs as a sorted set.
func firstCellIDs(t *testing.T, addr string, w *testWorld, q metric.Vector) []uint64 {
	t.Helper()
	perm := pivot.Permutation(w.key.Pivots().Distances(q))
	respType, resp := rawRoundTrip(t, addr, wire.MsgFirstCell, wire.FirstCellReq{Perm: perm}.Encode())
	if respType != wire.MsgCandidates {
		t.Fatalf("unexpected response %v", respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(m.Entries))
	for i, e := range m.Entries {
		ids[i] = e.ID
	}
	slices.Sort(ids)
	return ids
}

// TestClusterEquivalence asserts the acceptance criterion: a 3-node
// cluster returns the same ranked approximate candidate list as a single
// simserver over the same data, and a 1-node cluster is transparent too.
// Range queries must return the same result set, and refined k-NN answers
// must match exactly.
func TestClusterEquivalence(t *testing.T) {
	w := newWorld(t, 1500)
	ref := startServer(t, nodeConfig(false))
	refClient := dial(t, ref.Addr(), w.key)
	if _, err := refClient.InsertBatch(w.data.Objects); err != nil {
		t.Fatal(err)
	}

	for _, nodes := range []int{1, 3} {
		// A 1-node cluster needs no eager root split (there is no
		// cross-node merge); multi-node clusters require it.
		_, coord := startCluster(t, nodes, nodes > 1)
		client := dial(t, coord.Addr(), w.key)
		if _, err := client.InsertBatch(w.data.Objects); err != nil {
			t.Fatal(err)
		}

		queries := []int{3, 123, 456, 789, 1011, 1313}
		for _, qi := range queries {
			q := w.data.Objects[qi].Vec

			// Ranked candidate lists must match element for element.
			want := approxCandidateIDs(t, ref.Addr(), w, q, 200)
			got := approxCandidateIDs(t, coord.Addr(), w, q, 200)
			if !slices.Equal(got, want) {
				t.Fatalf("%d-node cluster: query %d: candidate list diverges from single server\n got %v\nwant %v",
					nodes, qi, got, want)
			}

			// The single most promising cell must be the same cell.
			if got, want := firstCellIDs(t, coord.Addr(), w, q), firstCellIDs(t, ref.Addr(), w, q); !slices.Equal(got, want) {
				t.Fatalf("%d-node cluster: query %d: first cell diverges", nodes, qi)
			}

			// Refined answers (through the unchanged client) match too.
			wantRes, _, err := refClient.ApproxKNN(q, 10, 200)
			if err != nil {
				t.Fatal(err)
			}
			gotRes, _, err := client.ApproxKNN(q, 10, 200)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotRes) != len(wantRes) {
				t.Fatalf("%d-node cluster: query %d: %d results vs %d", nodes, qi, len(gotRes), len(wantRes))
			}
			for i := range gotRes {
				if gotRes[i].ID != wantRes[i].ID || gotRes[i].Dist != wantRes[i].Dist {
					t.Fatalf("%d-node cluster: query %d: result %d diverges: %d@%g vs %d@%g",
						nodes, qi, i, gotRes[i].ID, gotRes[i].Dist, wantRes[i].ID, wantRes[i].Dist)
				}
			}

			// Precise range: same exact result set.
			wantRange, _, err := refClient.Range(q, 2.5)
			if err != nil {
				t.Fatal(err)
			}
			gotRange, _, err := client.Range(q, 2.5)
			if err != nil {
				t.Fatal(err)
			}
			wantIDs := resultIDs(wantRange)
			gotIDs := resultIDs(gotRange)
			if !slices.Equal(gotIDs, wantIDs) {
				t.Fatalf("%d-node cluster: query %d: range result diverges (%d vs %d ids)",
					nodes, qi, len(gotIDs), len(wantIDs))
			}
		}

		// Batched queries go through the same merge.
		qs := make([]metric.Vector, 0, len(queries))
		for _, qi := range queries {
			qs = append(qs, w.data.Objects[qi].Vec)
		}
		wantBatch, _, err := refClient.ApproxKNNBatch(qs, 10, 200)
		if err != nil {
			t.Fatal(err)
		}
		gotBatch, _, err := client.ApproxKNNBatch(qs, 10, 200)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantBatch {
			if !slices.Equal(resultIDList(gotBatch[i]), resultIDList(wantBatch[i])) {
				t.Fatalf("%d-node cluster: batch query %d diverges", nodes, i)
			}
		}
	}
}

func resultIDs(rs []core.Result) []uint64 {
	ids := resultIDList(rs)
	slices.Sort(ids)
	return ids
}

func resultIDList(rs []core.Result) []uint64 {
	ids := make([]uint64, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

// TestClusterDelete checks that deletes route through the coordinator and
// disappear from federated query results.
func TestClusterDelete(t *testing.T) {
	w := newWorld(t, 600)
	_, coord := startCluster(t, 3, true)
	client := dial(t, coord.Addr(), w.key)
	if _, err := client.InsertBatch(w.data.Objects); err != nil {
		t.Fatal(err)
	}
	victims := w.data.Objects[100:150]
	deleted, _, err := client.DeleteBatch(victims)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != len(victims) {
		t.Fatalf("deleted %d of %d", deleted, len(victims))
	}
	q := victims[0].Vec
	res, _, err := client.ApproxKNN(q, 5, 300)
	if err != nil {
		t.Fatal(err)
	}
	gone := make(map[uint64]bool, len(victims))
	for _, v := range victims {
		gone[v.ID] = true
	}
	for _, r := range res {
		if gone[r.ID] {
			t.Fatalf("deleted entry %d still returned", r.ID)
		}
	}
}

// TestNodeDownAtConnect: a coordinator must refuse to assemble over an
// unreachable node.
func TestNodeDownAtConnect(t *testing.T) {
	up := startServer(t, nodeConfig(true))
	// Grab a port that nothing listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	if _, err := cluster.New([]string{up.Addr(), deadAddr}, cluster.Options{Logf: t.Logf}); err == nil {
		t.Fatal("cluster.New succeeded with an unreachable node")
	} else if !strings.Contains(err.Error(), deadAddr) {
		t.Fatalf("error does not name the unreachable node: %v", err)
	}
}

// TestNodeDiesMidBatch: when a node dies during a batch insert, the
// coordinator re-routes the failed portion to the survivors and the whole
// batch lands.
func TestNodeDiesMidBatch(t *testing.T) {
	w := newWorld(t, 1200)
	nodes, coord := startCluster(t, 3, true)
	client := dial(t, coord.Addr(), w.key)

	first, second := w.data.Objects[:600], w.data.Objects[600:]
	if _, err := client.InsertBatch(first); err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, 3)
	total0 := 0
	for i, n := range nodes {
		sizes[i] = n.Index().Size()
		total0 += sizes[i]
	}
	if total0 != len(first) {
		t.Fatalf("first batch: %d entries landed, want %d", total0, len(first))
	}

	// Kill node 1 under the coordinator, then keep inserting. The
	// coordinator discovers the death on the failing round trip and
	// re-routes every affected entry to the survivors.
	nodes[1].Close()
	if _, err := client.InsertBatch(second); err != nil {
		t.Fatalf("insert after node death: %v", err)
	}
	live := coord.LiveNodes()
	if len(live) != 2 {
		t.Fatalf("coordinator sees %d live nodes, want 2 (%v)", len(live), live)
	}
	got := nodes[0].Index().Size() + nodes[2].Index().Size()
	want := sizes[0] + sizes[2] + len(second)
	if got != want {
		t.Fatalf("survivors hold %d entries, want %d", got, want)
	}

	// Queries keep working over the survivors.
	res, _, err := client.ApproxKNN(second[0].Vec, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results from surviving nodes")
	}

	// Deletes on a degraded cluster must still reach entries that live on
	// the survivors: placement is a mix of mod-3 (pre-death) and mod-2
	// (re-routed) routing, so refs are broadcast. Every second-batch entry
	// is on a survivor by construction and must actually die.
	deleted, _, err := client.DeleteBatch(second[:50])
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 50 {
		t.Fatalf("degraded delete removed %d of 50 surviving-node entries", deleted)
	}
	if got := nodes[0].Index().Size() + nodes[2].Index().Size(); got != want-50 {
		t.Fatalf("survivors hold %d entries after delete, want %d", got, want-50)
	}
}

// TestKeyMismatchRejection: nodes that disagree on the index shape (or run
// the wrong deployment) are rejected at assembly time.
func TestKeyMismatchRejection(t *testing.T) {
	base := startServer(t, nodeConfig(true))

	t.Run("different pivot count", func(t *testing.T) {
		other := simcloud.DefaultConfig(16)
		other.BucketCapacity = testBucket
		other.EagerRootSplit = true
		mismatched := startServer(t, other)
		_, err := cluster.New([]string{base.Addr(), mismatched.Addr()}, cluster.Options{Logf: t.Logf})
		if err == nil || !strings.Contains(err.Error(), "key-incompatible") {
			t.Fatalf("want key-incompatible error, got %v", err)
		}
	})

	t.Run("plain node", func(t *testing.T) {
		data := simcloud.ClusteredData(3, 100, 12, 4, simcloud.L2())
		pivots := simcloud.SelectPivots(3, data.Dist, data.Objects, testPivots)
		plain, err := server.NewPlain(nodeConfig(false), pivots)
		if err != nil {
			t.Fatal(err)
		}
		if err := plain.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { plain.Close() })
		_, err = cluster.New([]string{plain.Addr()}, cluster.Options{Logf: t.Logf})
		if err == nil || !strings.Contains(err.Error(), "plain deployment") {
			t.Fatalf("want plain-deployment rejection, got %v", err)
		}
	})

	t.Run("missing eager root split", func(t *testing.T) {
		a, b := startServer(t, nodeConfig(false)), startServer(t, nodeConfig(false))
		_, err := cluster.New([]string{a.Addr(), b.Addr()}, cluster.Options{Logf: t.Logf})
		if err == nil || !strings.Contains(err.Error(), "eager") {
			t.Fatalf("want eager-root-split rejection, got %v", err)
		}
	})
}

// TestCloseUnblocksHungNode: Close must terminate even while a request is
// blocked mid-round-trip on a node that answers the hello and then goes
// silent (with the default NodeTimeout of 0, only closing the node socket
// can unblock that read).
func TestCloseUnblocksHungNode(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A stub node: answers hellos, swallows everything else forever.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					typ, _, err := wire.ReadFrame(conn)
					if err != nil {
						return
					}
					if typ != wire.MsgHello {
						select {} // hang: never answer
					}
					resp := wire.HelloResp{
						Mode: wire.HelloModeEncrypted, NumPivots: testPivots,
						MaxLevel: 8, BucketCapacity: testBucket,
						Ranking: 1, EagerRootSplit: true, Shards: 1,
					}
					if err := wire.WriteFrame(conn, wire.MsgHelloAck, resp.Encode()); err != nil {
						return
					}
				}
			}()
		}
	}()

	coord, err := cluster.New([]string{ln.Addr().String()}, cluster.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// Park a request on the hung node.
	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.MsgRangeDists,
		(wire.RangeDistsReq{Dists: make([]float64, testPivots), Radius: 1}).Encode()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the handler reach the node read

	done := make(chan error, 1)
	go func() { done <- coord.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked behind the hung node round trip")
	}
}

// TestCoordinatorHello: the coordinator answers hello with the agreed
// shape and cluster-wide entry count.
func TestCoordinatorHello(t *testing.T) {
	w := newWorld(t, 300)
	_, coord := startCluster(t, 3, true)
	client := dial(t, coord.Addr(), w.key)
	if _, err := client.InsertBatch(w.data.Objects); err != nil {
		t.Fatal(err)
	}
	respType, resp := rawRoundTrip(t, coord.Addr(), wire.MsgHello, wire.HelloReq{}.Encode())
	if respType != wire.MsgHelloAck {
		t.Fatalf("unexpected hello response %v", respType)
	}
	info, err := wire.DecodeHelloResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != wire.HelloModeEncrypted || info.NumPivots != testPivots {
		t.Fatalf("hello shape mismatch: %+v", info)
	}
	if info.Entries != uint64(len(w.data.Objects)) {
		t.Fatalf("hello reports %d entries, want %d", info.Entries, len(w.data.Objects))
	}
}

// TestUnfederatedRequestRejected: baseline blob-store messages are not
// federated and must fail loudly, not silently go to one node.
func TestUnfederatedRequestRejected(t *testing.T) {
	_, coord := startCluster(t, 2, true)
	respType, resp := rawRoundTrip(t, coord.Addr(), wire.MsgGetRaw,
		wire.GetRawReq{IDs: []uint64{1}}.Encode())
	if respType != wire.MsgError {
		t.Fatalf("unexpected response %v", respType)
	}
	m, err := wire.DecodeErrorResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Msg, "not federated") {
		t.Fatalf("unexpected error message %q", m.Msg)
	}
}
