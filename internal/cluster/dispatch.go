package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"simcloud/internal/merge"
	"simcloud/internal/mindex"
	"simcloud/internal/wire"
)

// dispatch handles one client request and produces the response frame.
// ServerNanos on responses covers everything that happened on the far side
// of the client's connection — coordinator processing plus the node round
// trips — matching what "server time" means to a client that cannot see
// past its own socket.
func (c *Coordinator) dispatch(typ wire.MsgType, payload []byte) (wire.MsgType, []byte) {
	start := time.Now()
	respType, resp, err := c.handle(typ, payload, start)
	if err != nil {
		return wire.MsgError, wire.ErrorResp{Msg: err.Error()}.Encode()
	}
	return respType, resp
}

func (c *Coordinator) serverNanos(start time.Time) uint64 {
	return uint64(time.Since(start))
}

func (c *Coordinator) handle(typ wire.MsgType, payload []byte, start time.Time) (wire.MsgType, []byte, error) {
	switch typ {
	case wire.MsgHello:
		if _, err := wire.DecodeHelloReq(payload); err != nil {
			return 0, nil, err
		}
		info, err := c.aggregateHello(c.ctx)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgHelloAck, info.Encode(), nil

	case wire.MsgInsertEntries:
		req, err := wire.DecodeInsertEntriesReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := c.fanInsert(c.ctx, req.Entries, false); err != nil {
			return 0, nil, err
		}
		return wire.MsgAck, wire.AckResp{ServerNanos: c.serverNanos(start)}.Encode(), nil

	case wire.MsgIngestChunk:
		req, err := wire.DecodeIngestChunkReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := c.fanInsert(c.ctx, req.Entries, true); err != nil {
			return 0, nil, err
		}
		return wire.MsgIngestChunkAck, wire.IngestChunkAckResp{
			Seq: req.Seq, ServerNanos: c.serverNanos(start),
		}.Encode(), nil

	case wire.MsgIngestEnd:
		if _, err := wire.DecodeIngestEndReq(payload); err != nil {
			return 0, nil, err
		}
		if err := c.flushIngest(c.ctx); err != nil {
			return 0, nil, err
		}
		return wire.MsgAck, wire.AckResp{ServerNanos: c.serverNanos(start)}.Encode(), nil

	case wire.MsgDeleteEntries:
		req, err := wire.DecodeDeleteEntriesReq(payload)
		if err != nil {
			return 0, nil, err
		}
		del := c.deleteRefs
		if c.replicated() {
			del = c.deleteReplicated
		}
		deleted, err := del(c.ctx, req.Refs)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgDeleteAck, wire.DeleteAckResp{
			ServerNanos: c.serverNanos(start), Deleted: deleted,
		}.Encode(), nil

	case wire.MsgRangeDists:
		entries, err := c.concatCandidates(c.ctx, wire.MsgRangeDists, payload)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgCandidates, wire.CandidatesResp{
			ServerNanos: c.serverNanos(start), Entries: entries,
		}.Encode(), nil

	case wire.MsgApproxPerm:
		req, err := wire.DecodeApproxPermReq(payload)
		if err != nil {
			return 0, nil, err
		}
		return c.singleQuery(wire.BatchQuery{
			Kind: wire.BatchApproxPerm, Perm: req.Perm, CandSize: req.CandSize,
		}, start)

	case wire.MsgApproxDists:
		req, err := wire.DecodeApproxDistsReq(payload)
		if err != nil {
			return 0, nil, err
		}
		return c.singleQuery(wire.BatchQuery{
			Kind: wire.BatchApproxDists, Dists: req.Dists, CandSize: req.CandSize,
		}, start)

	case wire.MsgFirstCell:
		req, err := wire.DecodeFirstCellReq(payload)
		if err != nil {
			return 0, nil, err
		}
		return c.singleQuery(wire.BatchQuery{
			Kind: wire.BatchFirstCell, Perm: req.Perm, Dists: req.Dists,
		}, start)

	case wire.MsgBatchQuery:
		req, err := wire.DecodeBatchQueryReq(payload)
		if err != nil {
			return 0, nil, err
		}
		results, err := c.rankedFan(c.ctx, req)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgBatchCandidates, wire.BatchQueryResp{
			ServerNanos: c.serverNanos(start), Results: results,
		}.Encode(), nil

	case wire.MsgDownloadAll:
		entries, err := c.concatCandidates(c.ctx, wire.MsgDownloadAll, payload)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgCandidates, wire.CandidatesResp{
			ServerNanos: c.serverNanos(start), Entries: entries,
		}.Encode(), nil
	}
	return 0, nil, fmt.Errorf("cluster: request type %v is not federated; connect to a node directly", typ)
}

// singleQuery evaluates one approximate-flavor query through the ranked
// fan-out and answers with a plain candidate set, exactly like a single
// server's MsgCandidates response.
func (c *Coordinator) singleQuery(q wire.BatchQuery, start time.Time) (wire.MsgType, []byte, error) {
	results, err := c.rankedFan(c.ctx, wire.BatchQueryReq{Queries: []wire.BatchQuery{q}})
	if err != nil {
		return 0, nil, err
	}
	return wire.MsgCandidates, wire.CandidatesResp{
		ServerNanos: c.serverNanos(start), Entries: results[0],
	}.Encode(), nil
}

// routeNode maps an entry permutation onto one of the given live nodes:
// closest pivot modulo the live-node count — the cross-process mirror of
// engine.ShardedIndex routing, so a 1-node cluster places every entry
// exactly where a bare server would (the replicated path routes statically
// instead; see replicate.go).
func (c *Coordinator) routeNode(perm []int32, targets []*node) (*node, error) {
	if err := c.validatePerm(perm); err != nil {
		return nil, err
	}
	return targets[int(perm[0])%len(targets)], nil
}

// group partitions entries over the targets by routeNode, preserving
// arrival order within each group (bucket order inside a cell is arrival
// order, so this keeps multi-node candidate lists identical to a
// single-server build).
func (c *Coordinator) group(entries []mindex.Entry, targets []*node) ([][]mindex.Entry, error) {
	groups := make([][]mindex.Entry, len(targets))
	index := make(map[*node]int, len(targets))
	for i, n := range targets {
		index[n] = i
	}
	for _, e := range entries {
		n, err := c.routeNode(e.Perm, targets)
		if err != nil {
			return nil, err
		}
		groups[index[n]] = append(groups[index[n]], e)
	}
	return groups, nil
}

// fanInsert routes one insert batch to the nodes, replicated or not.
// stream selects the node-ward frame: false ships the plain bulk form
// (MsgInsertEntries), true ships the same entries as a MsgIngestChunk —
// so a streamed client ingest stays streamed on the node hop, where a
// group-commit WAL amortizes fsyncs until the forwarded end-of-stream
// flush (see flushIngest).
func (c *Coordinator) fanInsert(ctx context.Context, entries []mindex.Entry, stream bool) error {
	if c.replicated() {
		return c.insertReplicated(ctx, entries, stream)
	}
	return c.insertEntries(ctx, entries, stream)
}

// insertFrame builds the node-ward frame of one insert delivery: request
// type, expected ack type and payload, in the bulk or streamed form. The
// streamed form carries sequence number 0 — node connections are shared
// round-trip-serialized pipes multiplexing every client, so the coordinator
// forwards each chunk as its own one-chunk stream and the nodes (by design)
// ignore chunk numbering.
func insertFrame(entries []mindex.Entry, stream bool) (t, want wire.MsgType, payload []byte) {
	if stream {
		return wire.MsgIngestChunk, wire.MsgIngestChunkAck, wire.IngestChunkReq{Entries: entries}.Encode()
	}
	return wire.MsgInsertEntries, wire.MsgAck, wire.InsertEntriesReq{Entries: entries}.Encode()
}

// insertEntries routes the batch over the live nodes and retries with
// exclusion on node failure: entries whose node died mid-operation are
// re-routed over the surviving nodes until every entry landed or no node
// is left. A node that died after applying its group but before
// acknowledging leaves those entries inserted twice (on the dead node and
// on a survivor) — at-least-once semantics; see DESIGN.md §Distribution.
func (c *Coordinator) insertEntries(ctx context.Context, entries []mindex.Entry, stream bool) error {
	remaining := entries
	for len(remaining) > 0 {
		// Cancellation check between re-routing waves: a shutdown (or a
		// future per-request deadline) stops the retry loop instead of
		// hammering the surviving nodes.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: insert aborted: %w", err)
		}
		targets := c.alive()
		if len(targets) == 0 {
			return errNoLiveNodes
		}
		groups, err := c.group(remaining, targets)
		if err != nil {
			return err
		}
		failed := make([][]mindex.Entry, len(targets))
		err = c.pool.Run(len(targets), func(i int) error {
			if len(groups[i]) == 0 {
				return nil
			}
			t, want, payload := insertFrame(groups[i], stream)
			respType, resp, err := targets[i].roundTrip(ctx, t, payload, c.opts.NodeTimeout)
			if err != nil {
				if isNodeDown(err) {
					c.opts.Logf("simcoord: %v; re-routing %d entries", err, len(groups[i]))
					failed[i] = groups[i]
					return nil
				}
				return err
			}
			if respType != want {
				return fmt.Errorf("cluster: node %s: unexpected insert response %v", targets[i].addr, respType)
			}
			if stream {
				_, aerr := wire.DecodeIngestChunkAckResp(resp)
				return aerr
			}
			_, aerr := wire.DecodeAckResp(resp)
			return aerr
		})
		if err != nil {
			return err
		}
		remaining = remaining[:0:0]
		for _, g := range failed {
			remaining = append(remaining, g...)
		}
	}
	return nil
}

// flushIngest forwards a client's end-of-stream frame to every live node,
// so the final ack the coordinator returns carries the same durability
// promise a single server gives: every streamed chunk applied and
// WAL-flushed. A down node's missed chunks sit in its re-sync journal and
// reach it during re-admission, with the node's own WAL policy governing
// their durability — the same window the SyncNever tail already has.
func (c *Coordinator) flushIngest(ctx context.Context) error {
	replies, err := c.broadcast(ctx, wire.MsgIngestEnd, wire.IngestEndReq{}.Encode())
	if err != nil {
		return err
	}
	for _, rep := range replies {
		if rep.typ != wire.MsgAck {
			return fmt.Errorf("cluster: unexpected ingest-end response %v", rep.typ)
		}
		if _, err := wire.DecodeAckResp(rep.payload); err != nil {
			return err
		}
	}
	return nil
}

// deleteRefs routes delete references like inserts (the permutation prefix
// carries the routing pivot) while every node is live, summing the
// per-node deleted counts. On a degraded cluster — or one that has ever
// re-admitted a node (c.mixed) — routing is no longer reconstructible:
// entries placed before a death sit at Perm[0] mod N while re-routed ones
// sit at Perm[0] mod |live| — so each ref is instead broadcast to every
// live node, where non-owners skip the unknown ID; a mid-operation death
// retries the affected refs the same way.
func (c *Coordinator) deleteRefs(ctx context.Context, refs []mindex.Entry) (uint32, error) {
	var deleted atomic.Uint32
	remaining := refs
	for len(remaining) > 0 {
		if err := ctx.Err(); err != nil {
			return deleted.Load(), fmt.Errorf("cluster: delete aborted: %w", err)
		}
		targets := c.alive()
		if len(targets) == 0 {
			return deleted.Load(), errNoLiveNodes
		}
		var groups [][]mindex.Entry
		if len(targets) == len(c.nodes) && !c.mixed.Load() {
			var err error
			if groups, err = c.group(remaining, targets); err != nil {
				return deleted.Load(), err
			}
		} else {
			// Still validate the routing prefixes — hostile refs must fail
			// loudly even on the broadcast path.
			if _, err := c.group(remaining, targets); err != nil {
				return deleted.Load(), err
			}
			groups = make([][]mindex.Entry, len(targets))
			for i := range groups {
				groups[i] = remaining
			}
		}
		failed := make([][]mindex.Entry, len(targets))
		err := c.pool.Run(len(targets), func(i int) error {
			if len(groups[i]) == 0 {
				return nil
			}
			respType, resp, err := targets[i].roundTrip(ctx, wire.MsgDeleteEntries,
				wire.DeleteEntriesReq{Refs: groups[i]}.Encode(), c.opts.NodeTimeout)
			if err != nil {
				if isNodeDown(err) {
					c.opts.Logf("simcoord: %v; re-routing %d delete refs", err, len(groups[i]))
					failed[i] = groups[i]
					return nil
				}
				return err
			}
			if respType != wire.MsgDeleteAck {
				return fmt.Errorf("cluster: node %s: unexpected delete response %v", targets[i].addr, respType)
			}
			ack, aerr := wire.DecodeDeleteAckResp(resp)
			if aerr != nil {
				return aerr
			}
			deleted.Add(ack.Deleted)
			return nil
		})
		if err != nil {
			return deleted.Load(), err
		}
		remaining = remaining[:0:0]
		for _, g := range failed {
			remaining = append(remaining, g...)
		}
	}
	return deleted.Load(), nil
}

// nodeReply is one node's response frame within a broadcast.
type nodeReply struct {
	typ     wire.MsgType
	payload []byte
}

// broadcast sends the same request to every live node through the bounded
// pool and collects the replies in node order. A node that fails at the
// transport level is marked down and the whole broadcast retries over the
// survivors — queries stay transparent across a node death, serving
// whatever the surviving nodes hold. Application errors propagate.
func (c *Coordinator) broadcast(ctx context.Context, t wire.MsgType, payload []byte) ([]nodeReply, error) {
	for {
		// Cancellation check between fan-out waves: a node death triggers a
		// full retry over the survivors, and that loop must not outlive the
		// coordinator (or a future per-request deadline).
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cluster: fan-out aborted: %w", err)
		}
		targets := c.alive()
		if len(targets) == 0 {
			return nil, errNoLiveNodes
		}
		replies := make([]nodeReply, len(targets))
		var anyDown atomic.Bool
		err := c.pool.Run(len(targets), func(i int) error {
			respType, resp, err := targets[i].roundTrip(ctx, t, payload, c.opts.NodeTimeout)
			if err != nil {
				if isNodeDown(err) {
					c.opts.Logf("simcoord: %v; retrying over surviving nodes", err)
					anyDown.Store(true)
					return nil
				}
				return err
			}
			replies[i] = nodeReply{typ: respType, payload: resp}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if anyDown.Load() {
			continue
		}
		return replies, nil
	}
}

// concatCandidates broadcasts a request whose per-node responses are exact
// candidate sets (precise range, download-all) and concatenates them in
// node order — the cross-node form of the engine's per-shard range
// concatenation, exact because every first-level cell lives on one node.
func (c *Coordinator) concatCandidates(ctx context.Context, t wire.MsgType, payload []byte) ([]mindex.Entry, error) {
	fan := c.broadcast
	if c.replicated() {
		fan = c.filteredFan // each cell answered by exactly one replica
	}
	replies, err := fan(ctx, t, payload)
	if err != nil {
		return nil, err
	}
	var out []mindex.Entry
	for _, rep := range replies {
		if rep.typ != wire.MsgCandidates {
			return nil, fmt.Errorf("cluster: unexpected node response %v to %v", rep.typ, t)
		}
		m, err := wire.DecodeCandidatesResp(rep.payload)
		if err != nil {
			return nil, err
		}
		out = append(out, m.Entries...)
	}
	return out, nil
}

// rankedFan fans a batch of queries out to every live node as
// MsgBatchRanked and combines the per-node answers per query: range
// results concatenate in node order, approximate results merge by the
// shared (promise, prefix, source) order and trim to the query's candidate
// size, and first-cell results keep only the globally most promising cell
// — each the exact cross-node counterpart of what engine.ShardedIndex does
// across shards, via the same internal/merge implementation.
func (c *Coordinator) rankedFan(ctx context.Context, req wire.BatchQueryReq) ([][]mindex.Entry, error) {
	fan := c.broadcast
	if c.replicated() {
		fan = c.filteredFan // each cell answered by exactly one replica
	}
	replies, err := fan(ctx, wire.MsgBatchRanked, req.Encode())
	if err != nil {
		return nil, err
	}
	perNode := make([][][]mindex.RankedCandidate, len(replies))
	for i, rep := range replies {
		if rep.typ != wire.MsgBatchRankedCandidates {
			return nil, fmt.Errorf("cluster: unexpected node response %v to batch query", rep.typ)
		}
		m, err := wire.DecodeBatchRankedResp(rep.payload)
		if err != nil {
			return nil, err
		}
		if len(m.Results) != len(req.Queries) {
			return nil, fmt.Errorf("cluster: node returned %d results for %d queries",
				len(m.Results), len(req.Queries))
		}
		perNode[i] = m.Results
	}
	out := make([][]mindex.Entry, len(req.Queries))
	for qi, q := range req.Queries {
		per := make([][]mindex.RankedCandidate, len(perNode))
		for i := range perNode {
			per[i] = perNode[i][qi]
		}
		switch q.Kind {
		case wire.BatchRange:
			var entries []mindex.Entry
			for _, rcs := range per {
				entries = append(entries, merge.Entries(rcs, -1)...)
			}
			out[qi] = entries
		case wire.BatchFirstCell:
			cells := make([]merge.Cell, len(per))
			for i, rcs := range per {
				if len(rcs) == 0 {
					continue // node has no non-empty cell
				}
				cells[i] = merge.Cell{
					Entries: merge.Entries(rcs, -1),
					Promise: rcs[0].Promise,
					Prefix:  rcs[0].Prefix,
				}
			}
			if best := merge.BestCell(cells); best >= 0 {
				out[qi] = cells[best].Entries
			}
		default:
			out[qi] = merge.Entries(merge.Ranked(per), int(q.CandSize))
		}
	}
	return out, nil
}

// aggregateHello answers a client hello with the cluster-wide view: the
// agreed index shape plus entry and shard counts summed over the live
// nodes.
func (c *Coordinator) aggregateHello(ctx context.Context) (wire.HelloResp, error) {
	replies, err := c.broadcast(ctx, wire.MsgHello, wire.HelloReq{}.Encode())
	if err != nil {
		return wire.HelloResp{}, err
	}
	out := c.info
	out.Entries = 0
	out.Shards = 0
	for _, rep := range replies {
		if rep.typ != wire.MsgHelloAck {
			return wire.HelloResp{}, fmt.Errorf("cluster: unexpected node response %v to hello", rep.typ)
		}
		m, err := wire.DecodeHelloResp(rep.payload)
		if err != nil {
			return wire.HelloResp{}, err
		}
		out.Entries += m.Entries
		out.Shards += m.Shards
	}
	return out, nil
}
