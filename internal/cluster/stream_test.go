package cluster_test

// Streamed bulk ingest through the coordinator: the pipelined
// MsgIngestChunk frames a client sends must fan out across the federation
// (node-ward they stay streaming frames, so node WALs under group-commit
// policies amortise fsyncs until the forwarded end-of-stream flush) and
// leave the cluster answering queries exactly like a single server fed the
// same data monolithically.

import (
	"slices"
	"testing"

	"simcloud/internal/cluster"
	"simcloud/internal/core"
	"simcloud/internal/server"
)

// TestClusterStreamIngest drives a streamed ingest through 1- and 3-node
// clusters and checks the federated ranked candidate lists and refined
// answers against a single reference server.
func TestClusterStreamIngest(t *testing.T) {
	w := newWorld(t, 1200)
	ref := startServer(t, nodeConfig(false))
	refClient := dial(t, ref.Addr(), w.key)
	if _, err := refClient.InsertBatch(w.data.Objects); err != nil {
		t.Fatal(err)
	}

	for _, numNodes := range []int{1, 3} {
		nodes, coord := startCluster(t, numNodes, numNodes > 1)
		client, err := core.DialEncrypted(coord.Addr(), w.key,
			core.Options{BatchChunk: 96, StreamWindow: 3})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })

		costs, err := client.InsertStream(w.data.Objects)
		if err != nil {
			t.Fatalf("%d-node cluster: streamed ingest: %v", numNodes, err)
		}
		if costs.RoundTrips != 1 {
			t.Fatalf("%d-node cluster: streamed ingest took %d round trips, want 1",
				numNodes, costs.RoundTrips)
		}
		total := 0
		for _, n := range nodes {
			total += n.Index().Size()
		}
		if total != len(w.data.Objects) {
			t.Fatalf("%d-node cluster: %d entries landed, want %d",
				numNodes, total, len(w.data.Objects))
		}

		for _, qi := range []int{3, 123, 456, 1011} {
			q := w.data.Objects[qi].Vec
			want := approxCandidateIDs(t, ref.Addr(), w, q, 200)
			got := approxCandidateIDs(t, coord.Addr(), w, q, 200)
			if !slices.Equal(got, want) {
				t.Fatalf("%d-node cluster: query %d: candidate list diverges after streamed ingest",
					numNodes, qi)
			}
			wantRes, _, err := refClient.ApproxKNN(q, 10, 200)
			if err != nil {
				t.Fatal(err)
			}
			gotRes, _, err := client.ApproxKNN(q, 10, 200)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(gotRes, wantRes) {
				t.Fatalf("%d-node cluster: query %d: refined answer diverges after streamed ingest",
					numNodes, qi)
			}
		}
	}
}

// TestClusterStreamIngestReplicated streams through an R=2 coordinator:
// every entry must land on exactly two of the three nodes, and answers
// must match a single server (replica dedup included).
func TestClusterStreamIngestReplicated(t *testing.T) {
	w := newWorld(t, 900)
	ref := startServer(t, nodeConfig(false))
	refClient := dial(t, ref.Addr(), w.key)
	if _, err := refClient.InsertBatch(w.data.Objects); err != nil {
		t.Fatal(err)
	}

	const numNodes = 3
	nodes := make([]*server.Server, numNodes)
	addrs := make([]string, numNodes)
	for i := range nodes {
		nodes[i] = startServer(t, nodeConfig(true))
		addrs[i] = nodes[i].Addr()
	}
	coord, err := cluster.New(addrs, cluster.Options{Replicas: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	client, err := core.DialEncrypted(coord.Addr(), w.key,
		core.Options{BatchChunk: 64, StreamWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	if _, err := client.InsertStream(w.data.Objects); err != nil {
		t.Fatalf("replicated streamed ingest: %v", err)
	}
	total := 0
	for _, n := range nodes {
		total += n.Index().Size()
	}
	if total != 2*len(w.data.Objects) {
		t.Fatalf("R=2 cluster holds %d entries after streamed ingest, want %d",
			total, 2*len(w.data.Objects))
	}

	for _, qi := range []int{7, 250, 600} {
		q := w.data.Objects[qi].Vec
		wantRes, _, err := refClient.ApproxKNN(q, 10, 200)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, _, err := client.ApproxKNN(q, 10, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(gotRes, wantRes) {
			t.Fatalf("R=2 cluster: query %d diverges after streamed ingest", qi)
		}
	}
}
