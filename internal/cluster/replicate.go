package cluster

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"simcloud/internal/mindex"
	"simcloud/internal/wire"
)

// Replicated operation (Options.Replicas R > 1). Ownership is static: the
// entry permutation's first pivot p places its R copies on nodes
// (p mod N + j) mod N for j < R, over the CONFIGURED node list — never the
// live subset, so ownership is reconstructible across node deaths and
// re-admissions. Writes fan to every owner; an owner that is down (or dies
// mid-delivery) has the operation journaled in arrival order and replayed
// during re-admission, before the node is marked live again. Reads assign
// every first-level cell to its first live owner and fan out as
// pivot-filtered queries, so each entry is served by exactly one node no
// matter how many replicas store it (see DESIGN.md §Replication).

// replicated reports whether the coordinator keeps multiple copies per
// entry (and therefore must filter reads and journal missed writes).
func (c *Coordinator) replicated() bool { return c.replicas > 1 }

// validatePerm rejects entry permutations that cannot be routed. Entries
// arrive straight off the wire, so a hostile first element must become an
// error response, not a negative slice index.
func (c *Coordinator) validatePerm(perm []int32) error {
	if len(perm) == 0 {
		return fmt.Errorf("cluster: entry permutation is empty")
	}
	if perm[0] < 0 || uint32(perm[0]) >= c.info.NumPivots {
		return fmt.Errorf("cluster: permutation element %d out of range [0,%d)", perm[0], c.info.NumPivots)
	}
	return nil
}

// owners returns first-level cell p's static replica set in preference
// order: the first element is the cell's home node, the rest its backups.
func (c *Coordinator) owners(p int32) []*node {
	out := make([]*node, c.replicas)
	base := int(p) % len(c.nodes)
	for j := range out {
		out[j] = c.nodes[(base+j)%len(c.nodes)]
	}
	return out
}

// liveOwner returns the first live owner of cell p, or an error naming the
// cell when every replica is down.
func (c *Coordinator) liveOwner(p int32) (*node, error) {
	for _, n := range c.owners(p) {
		if !n.down.Load() {
			return n, nil
		}
	}
	return nil, fmt.Errorf("cluster: no live replica for pivot %d: %w", p, errNoLiveNodes)
}

// deliverOrJournal delivers one write operation to a replica, or journals
// it for re-admission replay if the replica is down. The down check happens
// under journalMu — the same lock readmit holds when it drains the journal
// and marks the node live — so an operation is either journaled while the
// node is still down (the drain loop picks it up) or sent to a node whose
// journal is already empty; it can never fall between. stream forwards an
// insert in the streamed ingest form (see insertFrame); the journaled form
// is the same ResyncOp either way, since re-admission replays through
// MsgResyncOps regardless of how the live delivery would have framed it.
func (c *Coordinator) deliverOrJournal(ctx context.Context, n *node, op wire.ResyncOp, stream bool) error {
	var t, want wire.MsgType
	var payload []byte
	switch op.Op {
	case wire.ResyncInsert:
		t, want, payload = insertFrame(op.Entries, stream)
	case wire.ResyncDelete:
		t, want = wire.MsgDeleteEntries, wire.MsgDeleteAck
		payload = wire.DeleteEntriesReq{Refs: op.Entries}.Encode()
	default:
		return fmt.Errorf("cluster: unknown journal op %d", op.Op)
	}
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: replica delivery aborted: %w", err)
		}
		c.journalMu.Lock()
		if n.down.Load() {
			c.journals[n.id] = append(c.journals[n.id], op)
			c.journalMu.Unlock()
			return nil
		}
		c.journalMu.Unlock()
		respType, _, err := n.roundTrip(ctx, t, payload, c.opts.NodeTimeout)
		if err != nil {
			if isNodeDown(err) {
				c.opts.Logf("simcoord: %v; journaling %d entries for re-sync", err, len(op.Entries))
				continue // the down check now journals
			}
			return err
		}
		if respType != want {
			return fmt.Errorf("cluster: node %s: unexpected replica write response %v", n.addr, respType)
		}
		return nil
	}
}

// insertReplicated fans each entry to all R owners of its first-level cell:
// live owners synchronously, down owners via the re-sync journal. The batch
// is rejected up front if any entry has no live owner at all — an
// acknowledgment must always be backed by at least one applied-and-logged
// copy, not by journal entries alone.
func (c *Coordinator) insertReplicated(ctx context.Context, entries []mindex.Entry, stream bool) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cluster: insert aborted: %w", err)
	}
	groups := make([][]mindex.Entry, len(c.nodes))
	for _, e := range entries {
		if err := c.validatePerm(e.Perm); err != nil {
			return err
		}
		if _, err := c.liveOwner(e.Perm[0]); err != nil {
			return err
		}
		for _, n := range c.owners(e.Perm[0]) {
			groups[n.id] = append(groups[n.id], e)
		}
	}
	return c.pool.Run(len(c.nodes), func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		return c.deliverOrJournal(ctx, c.nodes[i], wire.ResyncOp{Op: wire.ResyncInsert, Entries: groups[i]}, stream)
	})
}

// deleteReplicated removes each reference from all R owners in two waves
// per retry round. Wave one deletes from each reference's primary (first
// live owner) only and sums the acknowledged counts; wave two propagates to
// the remaining owners via deliverOrJournal, but only for references whose
// primary acknowledged. A reference whose primary died mid-wave retries the
// whole round instead: its replica copies are untouched, so the retry's new
// primary still holds the entry and the count stays exact — propagating
// eagerly would let the retry land on an owner that already deleted its
// copy and report zero.
func (c *Coordinator) deleteReplicated(ctx context.Context, refs []mindex.Entry) (uint32, error) {
	var deleted atomic.Uint32
	remaining := refs
	for len(remaining) > 0 {
		if err := ctx.Err(); err != nil {
			return deleted.Load(), fmt.Errorf("cluster: delete aborted: %w", err)
		}
		primGroups := make([][]mindex.Entry, len(c.nodes))
		for _, e := range remaining {
			if err := c.validatePerm(e.Perm); err != nil {
				return deleted.Load(), err
			}
			prim, err := c.liveOwner(e.Perm[0])
			if err != nil {
				return deleted.Load(), err
			}
			primGroups[prim.id] = append(primGroups[prim.id], e)
		}
		failed := make([][]mindex.Entry, len(c.nodes))
		acked := make([][]mindex.Entry, len(c.nodes))
		err := c.pool.Run(len(c.nodes), func(i int) error {
			g := primGroups[i]
			if len(g) == 0 {
				return nil
			}
			respType, resp, err := c.nodes[i].roundTrip(ctx, wire.MsgDeleteEntries,
				wire.DeleteEntriesReq{Refs: g}.Encode(), c.opts.NodeTimeout)
			if err != nil {
				if isNodeDown(err) {
					c.opts.Logf("simcoord: %v; retrying %d delete refs", err, len(g))
					failed[i] = g
					return nil
				}
				return err
			}
			if respType != wire.MsgDeleteAck {
				return fmt.Errorf("cluster: node %s: unexpected delete response %v", c.nodes[i].addr, respType)
			}
			ack, aerr := wire.DecodeDeleteAckResp(resp)
			if aerr != nil {
				return aerr
			}
			deleted.Add(ack.Deleted)
			acked[i] = g
			return nil
		})
		if err != nil {
			return deleted.Load(), err
		}
		repGroups := make([][]mindex.Entry, len(c.nodes))
		for pi, g := range acked {
			for _, e := range g {
				for _, n := range c.owners(e.Perm[0]) {
					if n.id != pi {
						repGroups[n.id] = append(repGroups[n.id], e)
					}
				}
			}
		}
		err = c.pool.Run(len(c.nodes), func(i int) error {
			if len(repGroups[i]) == 0 {
				return nil
			}
			return c.deliverOrJournal(ctx, c.nodes[i], wire.ResyncOp{Op: wire.ResyncDelete, Entries: repGroups[i]}, false)
		})
		if err != nil {
			return deleted.Load(), err
		}
		remaining = remaining[:0:0]
		for _, g := range failed {
			remaining = append(remaining, g...)
		}
	}
	return deleted.Load(), nil
}

// assignReadOwners maps every first-level cell onto its first live owner,
// returning one allowed-cell list per node (empty for nodes serving no
// cells this wave). It fails when some cell has every replica down — the
// cluster cannot answer exactly and must say so rather than return a
// silently short result.
func (c *Coordinator) assignReadOwners() ([][]int32, error) {
	allow := make([][]int32, len(c.nodes))
	for p := int32(0); uint32(p) < c.info.NumPivots; p++ {
		n, err := c.liveOwner(p)
		if err != nil {
			return nil, err
		}
		allow[n.id] = append(allow[n.id], p)
	}
	return allow, nil
}

// filteredFan is the replicated read fan-out: every first-level cell is
// assigned to one live owner and each owning node receives the request
// wrapped in a MsgFilteredQuery envelope restricted to its cells, so the
// union of the per-node answers covers every cell exactly once. A node
// death mid-wave reassigns its cells to surviving owners and resends the
// whole wave. Replies come back compacted in node-id order — the
// deterministic source order the ranked merge and range concatenation
// require.
func (c *Coordinator) filteredFan(ctx context.Context, inner wire.MsgType, payload []byte) ([]nodeReply, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cluster: fan-out aborted: %w", err)
		}
		allow, err := c.assignReadOwners()
		if err != nil {
			return nil, err
		}
		replies := make([]nodeReply, len(c.nodes))
		var anyDown atomic.Bool
		err = c.pool.Run(len(c.nodes), func(i int) error {
			if len(allow[i]) == 0 {
				return nil
			}
			req := wire.FilteredReq{Allow: allow[i], Inner: inner, Payload: payload}
			respType, resp, err := c.nodes[i].roundTrip(ctx, wire.MsgFilteredQuery, req.Encode(), c.opts.NodeTimeout)
			if err != nil {
				if isNodeDown(err) {
					c.opts.Logf("simcoord: %v; reassigning read owners", err)
					anyDown.Store(true)
					return nil
				}
				return err
			}
			replies[i] = nodeReply{typ: respType, payload: resp}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if anyDown.Load() {
			continue
		}
		out := replies[:0]
		for _, r := range replies {
			if r.typ != 0 {
				out = append(out, r)
			}
		}
		return out, nil
	}
}

// ProbeDownNodes attempts to re-admit every node currently marked down and
// returns how many came back. Re-admission re-dials the node, re-validates
// its index shape via the hello handshake, replays the journaled writes it
// missed, and only then marks it live. The background loop (Options.
// ReprobeInterval) calls this periodically; tests call it directly for a
// deterministic probe.
func (c *Coordinator) ProbeDownNodes(ctx context.Context) int {
	readmitted := 0
	for _, n := range c.nodes {
		if !n.down.Load() {
			continue
		}
		if err := c.readmit(ctx, n); err != nil {
			c.opts.Logf("simcoord: node %s stays down: %v", n.addr, err)
			continue
		}
		c.opts.Logf("simcoord: node %s re-admitted", n.addr)
		readmitted++
	}
	return readmitted
}

// readmit brings one down node back: dial, shape-check, journal replay,
// then (under journalMu, with the journal observed empty) the live mark.
// Writes racing the replay serialize on journalMu: they either journal
// while the node is still down — the drain loop picks them up — or run
// after the node is live and deliver directly.
func (c *Coordinator) readmit(ctx context.Context, n *node) error {
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", n.addr)
	if err != nil {
		return err
	}
	n.setConn(conn)
	ok := false
	defer func() {
		if !ok {
			n.closeConn()
		}
	}()
	info, err := c.hello(n)
	if err != nil {
		return err
	}
	if err := c.checkShape(n.addr, info); err != nil {
		return err
	}
	if !c.replicated() {
		// Unreplicated placement is mod the live-node count, so entries
		// inserted during the outage live where this node's cells "should"
		// be. From here on cell-to-node placement is mixed and deletes must
		// broadcast even with every node live.
		c.mixed.Store(true)
		n.down.Store(false)
		ok = true
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: re-sync aborted: %w", err)
		}
		c.journalMu.Lock()
		ops := c.journals[n.id]
		if len(ops) == 0 {
			n.down.Store(false)
			c.journalMu.Unlock()
			ok = true
			return nil
		}
		c.journals[n.id] = nil
		c.journalMu.Unlock()
		respType, _, err := n.roundTrip(ctx, wire.MsgResyncOps, wire.ResyncReq{Ops: ops}.Encode(), c.opts.NodeTimeout)
		if err == nil && respType != wire.MsgAck {
			err = fmt.Errorf("cluster: node %s: unexpected re-sync response %v", n.addr, respType)
		}
		if err != nil {
			// Not applied (or not provably applied): put the batch back at
			// the journal head so the next probe replays it in order.
			c.journalMu.Lock()
			c.journals[n.id] = append(ops, c.journals[n.id]...)
			c.journalMu.Unlock()
			return err
		}
	}
}

// probeLoop periodically retries down nodes until the coordinator closes.
func (c *Coordinator) probeLoop(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.ProbeDownNodes(c.ctx)
		}
	}
}
