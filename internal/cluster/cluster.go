// Package cluster implements the multi-node similarity cloud: a
// coordinator that fronts N encrypted simserver nodes over the ordinary
// wire protocol and speaks that same protocol to clients, so an
// EncryptedClient points at a coordinator exactly as it would at a single
// server — no client change, no key change.
//
// Placement follows the same rule the in-process engine uses for shards:
// an entry whose pivot permutation starts with pivot p lives on node
// p mod N (over the currently live nodes), so every first-level Voronoi
// cell is wholly contained in exactly one node. Range queries are exact
// per node and concatenate; approximate queries fan out as MsgBatchRanked
// and the per-node candidate streams are merged by the shared
// (promise, prefix, source) order of internal/merge — one merge
// implementation, two call sites (engine across shards, coordinator across
// nodes) — so a multi-node cluster reproduces the single-server candidate
// list exactly (see DESIGN.md §Distribution for the preconditions).
//
// At startup the coordinator hellos every node and refuses to federate
// nodes that are unreachable or key-incompatible (different pivot count,
// tree depth, bucket capacity or ranking strategy — entries indexed under
// one pivot set are garbage under another). Node failure at runtime is
// handled with retry-with-exclusion: a node whose connection fails is
// marked down, and the failed portion of the operation is re-routed over
// the surviving nodes. Down nodes are periodically re-probed
// (Options.ReprobeInterval, or ProbeDownNodes directly) and re-admitted
// after a fresh shape check.
//
// With Options.Replicas R > 1 every entry is stored on R nodes chosen by
// its first-level cell (see replicate.go): writes fan to all owners with
// missed writes journaled for re-admission replay, and reads assign each
// cell to one live owner via pivot-filtered queries — so the cluster keeps
// answering exactly, with byte-identical candidate lists, while any R-1 of
// a cell's owners are down.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"simcloud/internal/fanout"
	"simcloud/internal/wire"
)

// Options configures a Coordinator.
type Options struct {
	// DialTimeout bounds each node dial + hello at startup. Default 5s.
	DialTimeout time.Duration
	// NodeTimeout bounds each request round trip to a node; a node that
	// exceeds it is treated as failed (marked down, operation re-routed).
	// 0 (the default) waits indefinitely.
	NodeTimeout time.Duration
	// Replicas is the number of nodes storing each entry (R). Must be at
	// most the node count; 0 or 1 keeps one copy per entry (the
	// unreplicated placement). See replicate.go for the R > 1 semantics.
	Replicas int
	// ReprobeInterval is how often down nodes are re-dialed and, if healthy
	// and shape-compatible, re-admitted (after journal replay when
	// replicated). 0 disables the background loop; ProbeDownNodes still
	// probes on demand.
	ReprobeInterval time.Duration
	// Logf receives connection-level failures; defaults to log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.Replicas == 0 {
		o.Replicas = 1
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Coordinator federates N encrypted simserver nodes behind one listening
// address speaking the standard wire protocol.
type Coordinator struct {
	opts     Options
	nodes    []*node
	info     wire.HelloResp // the agreed index shape (validated across nodes)
	pool     *fanout.Pool
	replicas int

	// journalMu guards the per-node re-sync journals and serializes the
	// down→live transition of re-admission against concurrent replica
	// writes (see deliverOrJournal / readmit in replicate.go).
	journalMu sync.Mutex
	journals  [][]wire.ResyncOp

	// mixed records that an unreplicated cluster re-admitted a node, mixing
	// placement epochs: deletes must broadcast from then on even when every
	// node is live.
	mixed atomic.Bool

	// ctx is the coordinator's lifetime context: Close cancels it, which
	// aborts fan-out retry loops between waves and interrupts node round
	// trips blocked mid-read (NodeTimeout 0), so shutdown never waits on a
	// hung node.
	ctx    context.Context
	cancel context.CancelFunc

	// connMu guards the client-facing listener and connection registry,
	// exactly like internal/server: Start, accept-loop registration,
	// deregistration and Close all synchronize here.
	connMu sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// node is one federated simserver: its address, its (mutex-serialized)
// coordinator connection, and its liveness flag. A node marked down stays
// down until a probe re-dials it and re-admission succeeds — including the
// shape re-check and (when replicated) the journal replay that brings its
// data back in sync.
type node struct {
	id   int
	addr string
	// mu serializes round trips; connMu guards only the conn pointer, so
	// Coordinator.Close can close the socket of a round trip that is
	// blocked mid-read (NodeTimeout 0) without waiting behind mu.
	mu     sync.Mutex
	connMu sync.Mutex
	conn   net.Conn
	down   atomic.Bool
}

func (n *node) getConn() net.Conn {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	return n.conn
}

// setConn installs a fresh connection (re-admission), closing any stale one.
func (n *node) setConn(conn net.Conn) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.conn != nil {
		n.conn.Close()
	}
	n.conn = conn
}

// closeConn closes and clears the connection; safe to call concurrently
// with an in-flight roundTrip (whose blocked read then fails over to the
// node-down path).
func (n *node) closeConn() {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.conn != nil {
		n.conn.Close()
		n.conn = nil
	}
}

// nodeDownError marks a transport-level node failure, as opposed to an
// application error the node itself reported (wire.RemoteError). Transport
// failures trigger re-routing; application errors propagate to the client.
type nodeDownError struct {
	addr string
	err  error
}

func (e *nodeDownError) Error() string {
	return fmt.Sprintf("cluster: node %s failed: %v", e.addr, e.err)
}

func (e *nodeDownError) Unwrap() error { return e.err }

func isNodeDown(err error) bool {
	var nd *nodeDownError
	return errors.As(err, &nd)
}

// errNoLiveNodes reports a cluster with every node marked down.
var errNoLiveNodes = errors.New("cluster: no live nodes")

// New connects to every node, verifies mutual key-compatibility via the
// hello handshake, and returns a coordinator ready to Start. It fails fast
// — unreachable node, plain-mode node, or any disagreement in pivot count,
// tree depth, bucket capacity or ranking — because a misassembled cluster
// would not crash, it would silently return wrong candidate sets.
func New(addrs []string, opts Options) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: at least one node address is required")
	}
	o := opts.withDefaults()
	if o.Replicas < 0 || o.Replicas > len(addrs) {
		return nil, fmt.Errorf("cluster: %d replicas need %d nodes, got %d", o.Replicas, o.Replicas, len(addrs))
	}
	c := &Coordinator{
		opts:     o,
		replicas: o.Replicas,
		journals: make([][]wire.ResyncOp, len(addrs)),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	ok := false
	defer func() {
		if !ok {
			c.closeNodes()
		}
	}()
	for i, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, o.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %s: %w", addr, err)
		}
		c.nodes = append(c.nodes, &node{id: i, addr: addr, conn: conn})
	}
	for i, n := range c.nodes {
		info, err := c.hello(n)
		if err != nil {
			return nil, err
		}
		if err := c.admit(i, info); err != nil {
			return nil, err
		}
	}
	c.pool = fanout.New(min(len(c.nodes), max(2, runtime.GOMAXPROCS(0))))
	if o.ReprobeInterval > 0 {
		c.wg.Add(1)
		go c.probeLoop(o.ReprobeInterval)
	}
	ok = true
	return c, nil
}

// hello performs the identification round trip with one node. It runs at
// assembly time only, so it is bounded by DialTimeout: a node that accepts
// the connection but never answers must fail New loudly, not hang it.
func (c *Coordinator) hello(n *node) (wire.HelloResp, error) {
	respType, payload, err := n.roundTrip(c.ctx, wire.MsgHello, wire.HelloReq{}.Encode(), c.opts.DialTimeout)
	if err != nil {
		return wire.HelloResp{}, err
	}
	if respType != wire.MsgHelloAck {
		return wire.HelloResp{}, fmt.Errorf("cluster: node %s: unexpected hello response %v", n.addr, respType)
	}
	return wire.DecodeHelloResp(payload)
}

// admit checks node i's hello against the cluster's agreed shape (set by
// node 0) and rejects any mismatch.
func (c *Coordinator) admit(i int, info wire.HelloResp) error {
	if i == 0 {
		c.info = info
	}
	return c.checkShape(c.nodes[i].addr, info)
}

// checkShape validates one node's hello against the cluster's agreed index
// shape — at assembly and again at every re-admission, because a node
// restarted with different parameters would not crash the cluster, it
// would silently return wrong candidate sets.
func (c *Coordinator) checkShape(addr string, info wire.HelloResp) error {
	if info.Mode != wire.HelloModeEncrypted {
		return fmt.Errorf("cluster: node %s runs the plain deployment; the coordinator federates encrypted nodes only", addr)
	}
	if len(c.nodes) > 1 && !info.EagerRootSplit {
		return fmt.Errorf("cluster: node %s does not split its root cell eagerly; "+
			"multi-node clusters require it (start simserver with -eager-root-split or -shards > 1) "+
			"so per-node promise values stay comparable in the cross-node merge", addr)
	}
	ref := c.info
	if info.NumPivots != ref.NumPivots || info.MaxLevel != ref.MaxLevel ||
		info.BucketCapacity != ref.BucketCapacity || info.Ranking != ref.Ranking {
		return fmt.Errorf("cluster: node %s is key-incompatible with node %s: "+
			"pivots %d vs %d, max level %d vs %d, bucket %d vs %d, ranking %d vs %d",
			addr, c.nodes[0].addr,
			info.NumPivots, ref.NumPivots, info.MaxLevel, ref.MaxLevel,
			info.BucketCapacity, ref.BucketCapacity, info.Ranking, ref.Ranking)
	}
	return nil
}

// roundTrip performs one request/response exchange with the node,
// serialized on the node's connection, under ctx plus the per-round-trip
// timeout (whichever fires first): the effective deadline becomes the
// connection's read/write deadline via wire.ArmContext, so a node that
// stalls mid-response cannot hang the coordinator past its bound. Any
// transport failure closes the connection, marks the node down and returns
// a nodeDownError; an error frame from the node is returned as a
// wire.RemoteError with the node still up.
func (n *node) roundTrip(ctx context.Context, t wire.MsgType, payload []byte, timeout time.Duration) (wire.MsgType, []byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	conn := n.getConn()
	if conn == nil {
		return 0, nil, &nodeDownError{addr: n.addr, err: errors.New("connection closed")}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	disarm, err := wire.ArmContext(ctx, conn)
	if err != nil {
		return 0, nil, err // coordinator shutting down; not the node's fault
	}
	fail := func(err error) (wire.MsgType, []byte, error) {
		n.closeConn()
		n.down.Store(true)
		return 0, nil, &nodeDownError{addr: n.addr, err: err}
	}
	respType, resp, err := func() (wire.MsgType, []byte, error) {
		if err := wire.WriteFrame(conn, t, payload); err != nil {
			return 0, nil, err
		}
		return wire.ReadFrame(conn)
	}()
	if err = disarm(err); err != nil {
		return fail(err)
	}
	if respType == wire.MsgError {
		m, derr := wire.DecodeErrorResp(resp)
		if derr != nil {
			return fail(derr)
		}
		return 0, nil, &wire.RemoteError{Msg: m.Msg}
	}
	return respType, resp, nil
}

// alive returns the currently live nodes, in node-id order. The order
// matters: it is the concatenation order for range results and the source
// order for the ranked merge, so it must be deterministic.
func (c *Coordinator) alive() []*node {
	out := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !n.down.Load() {
			out = append(out, n)
		}
	}
	return out
}

// NumNodes returns the configured node count.
func (c *Coordinator) NumNodes() int { return len(c.nodes) }

// LiveNodes returns the addresses of the nodes currently considered live.
func (c *Coordinator) LiveNodes() []string {
	var out []string
	for _, n := range c.alive() {
		out = append(out, n.addr)
	}
	return out
}

// Info returns the agreed index shape the nodes were admitted under.
func (c *Coordinator) Info() wire.HelloResp { return c.info }

// Start begins listening for clients on addr (use "127.0.0.1:0" for an
// ephemeral loopback port).
func (c *Coordinator) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		ln.Close()
		return errors.New("cluster: coordinator already closed")
	}
	if c.ln != nil {
		c.connMu.Unlock()
		ln.Close()
		return errors.New("cluster: coordinator already started")
	}
	c.ln = ln
	c.conns = make(map[net.Conn]struct{})
	c.wg.Add(1)
	c.connMu.Unlock()
	go c.acceptLoop(ln)
	return nil
}

// Addr returns the client-facing listening address (valid after Start).
func (c *Coordinator) Addr() string {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

func (c *Coordinator) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.connMu.Lock()
		if c.closed {
			c.connMu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.connMu.Unlock()
		go c.serveConn(conn)
	}
}

// Close stops the listener, closes client connections, stops the fan-out
// pool and disconnects from the nodes (the nodes themselves keep running).
// Idempotent and safe against concurrent Start and in-flight requests.
func (c *Coordinator) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	for conn := range c.conns {
		conn.Close()
	}
	c.connMu.Unlock()
	// Cancel the lifetime context first: fan-out retry loops stop between
	// waves and armed node round trips get interrupted.
	c.cancel()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	// Close node connections BEFORE waiting for the serve goroutines: a
	// handler blocked mid-round-trip on a hung node (NodeTimeout 0) only
	// unblocks when its node socket dies; waiting first would deadlock
	// shutdown.
	c.closeNodes()
	c.wg.Wait()
	// A probe racing the first closeNodes may have installed a fresh node
	// connection before observing the cancelled context; now that every
	// goroutine has exited, close whatever is left.
	c.closeNodes()
	if c.pool != nil {
		c.pool.Close()
	}
	return err
}

func (c *Coordinator) closeNodes() {
	for _, n := range c.nodes {
		n.closeConn()
	}
}

func (c *Coordinator) serveConn(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		c.connMu.Lock()
		delete(c.conns, conn)
		c.connMu.Unlock()
		conn.Close()
	}()
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // client disconnected or sent garbage framing
		}
		respType, respPayload := c.dispatch(typ, payload)
		if err := wire.WriteFrame(conn, respType, respPayload); err != nil {
			c.opts.Logf("simcoord: writing response to %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}
