package stats

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a concurrency-safe latency histogram over exponentially
// spaced duration buckets. Observations land in atomic counters, so the
// serving hot path records a latency with two atomic adds and no lock; the
// read side (quantiles, Prometheus export) walks a consistent-enough view
// for monitoring — counters are read individually, not snapshotted, which
// is the standard contract of a scrape-oriented histogram.
//
// The quantile estimate interpolates within the winning bucket (assuming a
// uniform distribution inside it), so its error is bounded by the bucket
// ratio — ~1.6x worst case with DefaultLatencyBounds, far tighter in the
// dense middle of the range. That is the usual precision trade of a fixed-
// bucket histogram: constant memory, wait-free writes, mergeable across
// processes.
type Histogram struct {
	bounds []time.Duration // upper bounds, strictly increasing; implicit +Inf after
	counts []atomic.Int64  // len(bounds)+1; counts[i] <= bounds[i], last is overflow
	sum    atomic.Int64    // nanoseconds, for averages and Prometheus _sum
	total  atomic.Int64
}

// DefaultLatencyBounds covers 100µs..30s in roughly-doubling steps — wide
// enough for an in-process search (tens of µs) and a heavily queued
// networked one (seconds) to both resolve.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
		30 * time.Second,
	}
}

// NewHistogram creates a histogram over the given upper bounds, which must
// be strictly increasing and non-empty. nil bounds pick
// DefaultLatencyBounds.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds()
	}
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{bounds: make([]time.Duration, len(bounds))}
	copy(h.bounds, bounds)
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[h.bucket(d)].Add(1)
	h.sum.Add(int64(d))
	h.total.Add(1)
}

// bucket returns the index of the first bucket whose bound is >= d (binary
// search; the overflow bucket when d exceeds every bound).
func (h *Histogram) bucket(d time.Duration) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the selected bucket. An empty histogram returns 0; observations in
// the overflow bucket report the largest bound (the estimate saturates —
// it never invents durations beyond what the buckets can resolve).
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lower := time.Duration(0)
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := float64(rank-seen) / float64(c)
			return lower + time.Duration(frac*float64(upper-lower))
		}
		seen += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Bucket is one cumulative histogram bucket for export: Count observations
// at or below UpperBound (Prometheus `le` semantics).
type Bucket struct {
	UpperBound time.Duration
	Count      int64
}

// Buckets returns the cumulative bucket counts in bound order. The +Inf
// bucket is not included — its cumulative count is Count().
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.bounds))
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out[i] = Bucket{UpperBound: b, Count: cum}
	}
	return out
}

// Reset zeroes every counter. Not atomic with respect to concurrent
// Observe calls — reset between measurement windows, not during one.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.total.Store(0)
}
