package stats

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTimerAccumulates(t *testing.T) {
	var tm Timer
	tm.Add(time.Millisecond)
	tm.Add(2 * time.Millisecond)
	if tm.Value() != 3*time.Millisecond {
		t.Fatalf("timer = %v, want 3ms", tm.Value())
	}
	tm.Time(func() { time.Sleep(time.Millisecond) })
	if tm.Value() < 4*time.Millisecond {
		t.Fatalf("timer = %v, want >= 4ms", tm.Value())
	}
	tm.Reset()
	if tm.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCostsFinishDerived(t *testing.T) {
	c := Costs{ClientTime: time.Millisecond, ServerTime: time.Millisecond}
	start := time.Now().Add(-10 * time.Millisecond)
	c.FinishDerived(start)
	if c.Overall < 10*time.Millisecond {
		t.Fatalf("overall = %v", c.Overall)
	}
	if c.CommTime != c.Overall-c.ClientTime-c.ServerTime {
		t.Fatalf("comm = %v, want remainder", c.CommTime)
	}
}

func TestCostsFinishDerivedClampsNegative(t *testing.T) {
	c := Costs{ClientTime: time.Hour}
	c.FinishDerived(time.Now())
	if c.CommTime != 0 {
		t.Fatalf("comm = %v, want 0 (clamped)", c.CommTime)
	}
}

func TestCostsAccumulateAndDivide(t *testing.T) {
	var sum Costs
	one := Costs{
		ClientTime: 2 * time.Millisecond, EncryptTime: time.Millisecond,
		DecryptTime: time.Millisecond, DistCompTime: time.Millisecond,
		ServerTime: 4 * time.Millisecond, CommTime: 6 * time.Millisecond,
		Overall: 12 * time.Millisecond, BytesSent: 10, BytesReceived: 30,
		DistComps: 100, Candidates: 50, RoundTrips: 2,
	}
	for range 4 {
		sum.Accumulate(one)
	}
	avg := sum.DividedBy(4)
	if avg != one {
		t.Fatalf("avg = %+v, want %+v", avg, one)
	}
	if got := sum.DividedBy(0); got != sum {
		t.Fatal("DividedBy(0) must be identity")
	}
	if one.CommBytes() != 40 {
		t.Fatalf("comm bytes = %d, want 40", one.CommBytes())
	}
	if one.String() == "" {
		t.Fatal("empty string rendering")
	}
}

func TestRecallKnown(t *testing.T) {
	cases := []struct {
		result, exact []uint64
		want          float64
	}{
		{[]uint64{1, 2, 3}, []uint64{1, 2, 3}, 100},
		{[]uint64{1, 2}, []uint64{1, 2, 3, 4}, 50},
		{[]uint64{}, []uint64{1}, 0},
		{[]uint64{9}, []uint64{}, 100},
		{[]uint64{5, 6, 7}, []uint64{1, 2}, 0},
	}
	for _, c := range cases {
		if got := Recall(c.result, c.exact); got != c.want {
			t.Errorf("Recall(%v, %v) = %g, want %g", c.result, c.exact, got, c.want)
		}
	}
}

// Property: recall is always within [0,100], 100 for identical sets, and
// monotone under growing the result set.
func TestQuickRecallBounds(t *testing.T) {
	f := func(result, exact []uint64) bool {
		r := Recall(result, exact)
		if r < 0 || r > 100 {
			return false
		}
		if Recall(exact, exact) != 100 {
			return false
		}
		grown := append(append([]uint64{}, result...), exact...)
		return Recall(grown, exact) >= r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
