// Package stats provides the cost-accounting primitives used throughout the
// similarity cloud: wall-clock timers, atomic counters, and the per-operation
// cost breakdown reported in the paper's evaluation (client time, server
// time, communication time, encryption/decryption time, distance-computation
// time, communication cost in bytes, and result recall).
//
// All counters are safe for concurrent use; a Costs value is not (each
// operation owns its Costs until it is published).
package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic counter.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n.Store(0) }

// Timer accumulates wall-clock durations, safe for concurrent use.
type Timer struct {
	ns atomic.Int64
}

// Add accumulates d into the timer.
func (t *Timer) Add(d time.Duration) { t.ns.Add(int64(d)) }

// Time runs fn and accumulates its wall-clock duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.ns.Add(int64(time.Since(start)))
}

// Value returns the accumulated duration.
func (t *Timer) Value() time.Duration { return time.Duration(t.ns.Load()) }

// Reset sets the accumulated duration back to zero.
func (t *Timer) Reset() { t.ns.Store(0) }

// Costs is the cost decomposition of one client operation (an insert bulk or
// a search), mirroring the measures of the paper's Section 5:
//
//   - ClientTime: total client-side computation (encryption/decryption,
//     distance computations, processing overhead).
//   - EncryptTime / DecryptTime: the cipher-related share of ClientTime.
//     DecryptTime includes deserialization of candidate objects, as in the
//     paper.
//   - DistCompTime: client-side metric distance evaluations (object–pivot
//     distances on insert, query–candidate distances on refinement).
//   - ServerTime: time spent inside the server handler, as reported by the
//     server in the response frame.
//   - CommTime: time attributable to client–server communication
//     (Overall − ClientTime − ServerTime, clamped at zero).
//   - Overall: end-to-end wall-clock time of the operation.
//   - BytesSent / BytesReceived: communication cost on the wire, as seen by
//     the client.
//   - DistComps: number of metric distance computations on the client.
//   - Candidates: size of the candidate set transferred (searches only).
type Costs struct {
	ClientTime   time.Duration
	EncryptTime  time.Duration
	DecryptTime  time.Duration
	DistCompTime time.Duration
	ServerTime   time.Duration
	CommTime     time.Duration
	Overall      time.Duration

	BytesSent     int64
	BytesReceived int64
	DistComps     int64
	Candidates    int64
	RoundTrips    int64
}

// CommBytes returns the total communication cost (both directions).
func (c Costs) CommBytes() int64 { return c.BytesSent + c.BytesReceived }

// FinishDerived fills Overall from the operation start time and derives
// CommTime as the remainder not attributed to client or server computation.
// This mirrors the paper's decomposition where overall time is the sum of
// client, server and communication times.
func (c *Costs) FinishDerived(start time.Time) {
	c.Overall = time.Since(start)
	c.CommTime = c.Overall - c.ClientTime - c.ServerTime
	if c.CommTime < 0 {
		c.CommTime = 0
	}
}

// Accumulate adds other's fields into c (used to sum costs over a batch of
// operations before averaging).
func (c *Costs) Accumulate(other Costs) {
	c.ClientTime += other.ClientTime
	c.EncryptTime += other.EncryptTime
	c.DecryptTime += other.DecryptTime
	c.DistCompTime += other.DistCompTime
	c.ServerTime += other.ServerTime
	c.CommTime += other.CommTime
	c.Overall += other.Overall
	c.BytesSent += other.BytesSent
	c.BytesReceived += other.BytesReceived
	c.DistComps += other.DistComps
	c.Candidates += other.Candidates
	c.RoundTrips += other.RoundTrips
}

// DividedBy returns the element-wise average of c over n operations.
// n <= 0 returns c unchanged.
func (c Costs) DividedBy(n int) Costs {
	if n <= 0 {
		return c
	}
	d := int64(n)
	return Costs{
		ClientTime:    c.ClientTime / time.Duration(d),
		EncryptTime:   c.EncryptTime / time.Duration(d),
		DecryptTime:   c.DecryptTime / time.Duration(d),
		DistCompTime:  c.DistCompTime / time.Duration(d),
		ServerTime:    c.ServerTime / time.Duration(d),
		CommTime:      c.CommTime / time.Duration(d),
		Overall:       c.Overall / time.Duration(d),
		BytesSent:     c.BytesSent / d,
		BytesReceived: c.BytesReceived / d,
		DistComps:     c.DistComps / d,
		Candidates:    c.Candidates / d,
		RoundTrips:    c.RoundTrips / d,
	}
}

// String renders a compact single-line summary, useful in logs and examples.
func (c Costs) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "client=%v (enc=%v dec=%v dist=%v) server=%v comm=%v overall=%v bytes=%d",
		c.ClientTime.Round(time.Microsecond),
		c.EncryptTime.Round(time.Microsecond),
		c.DecryptTime.Round(time.Microsecond),
		c.DistCompTime.Round(time.Microsecond),
		c.ServerTime.Round(time.Microsecond),
		c.CommTime.Round(time.Microsecond),
		c.Overall.Round(time.Microsecond),
		c.CommBytes())
	return b.String()
}

// Recall returns the recall of result against the exact answer in percent,
// as defined in Section 4.1 of the paper: |result ∩ exact| / |exact| · 100.
// An empty exact answer yields 100 (the result trivially covers it).
func Recall(result, exact []uint64) float64 {
	if len(exact) == 0 {
		return 100
	}
	in := make(map[uint64]struct{}, len(result))
	for _, id := range result {
		in[id] = struct{}{}
	}
	hit := 0
	for _, id := range exact {
		if _, ok := in[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(exact)) * 100
}
