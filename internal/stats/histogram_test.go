package stats

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for range 100 {
		h.Observe(3 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Sum() != 300*time.Millisecond {
		t.Fatalf("Sum = %v, want 300ms", h.Sum())
	}
	if h.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want 3ms", h.Mean())
	}
	// All observations sit in the (2ms, 5ms] bucket: every quantile must
	// land inside it.
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		if got <= 2*time.Millisecond || got > 5*time.Millisecond {
			t.Fatalf("Quantile(%g) = %v, want within (2ms, 5ms]", q, got)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram(nil)
	// A spread of latencies: quantiles must be monotone in q and bracket
	// the true values to within one bucket.
	for i := range 1000 {
		h.Observe(time.Duration(i+1) * time.Millisecond / 10) // 0.1ms .. 100ms
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	p999 := h.Quantile(0.999)
	if !(p50 <= p99 && p99 <= p999) {
		t.Fatalf("quantiles out of order: p50=%v p99=%v p999=%v", p50, p99, p999)
	}
	// True p50 = 50ms, inside the (20ms, 50ms] bucket.
	if p50 <= 20*time.Millisecond || p50 > 50*time.Millisecond {
		t.Fatalf("p50 = %v, want within (20ms, 50ms]", p50)
	}
	// True p99 = 99ms, inside the (50ms, 100ms] bucket.
	if p99 <= 50*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want within (50ms, 100ms]", p99)
	}
}

func TestHistogramOverflowSaturates(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	h.Observe(time.Hour)
	if got := h.Quantile(0.5); got != 2*time.Millisecond {
		t.Fatalf("overflow quantile = %v, want saturation at 2ms", got)
	}
	bs := h.Buckets()
	if len(bs) != 2 || bs[0].Count != 0 || bs[1].Count != 0 {
		t.Fatalf("overflow observation leaked into bounded buckets: %+v", bs)
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	bs := h.Buckets()
	want := []int64{1, 3, 4}
	for i, b := range bs {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (le %v) = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range per {
				h.Observe(time.Duration(i%100) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("reset left state behind: count=%d sum=%v", h.Count(), h.Sum())
	}
}
