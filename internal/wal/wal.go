// Package wal implements the per-server write-ahead log that makes a
// killed-and-restarted simserver node recover to its pre-crash state: every
// acknowledged mutation of the encrypted entry store (insert or delete) is
// appended as one CRC-framed record before the acknowledgment leaves the
// server, and a restarting node replays the log into a fresh engine.
//
// Record framing (little endian, matching the entry codec):
//
//	length uint32 | crc32 uint32 | payload
//	payload = op uint8 | count uint32 | entry × count (mindex entry codec)
//
// The CRC (IEEE) covers the payload. A torn tail — a record whose header,
// body or checksum is incomplete or corrupt, as a crash mid-append leaves
// behind — is detected on open: replay stops at the last intact record and
// the file is truncated back to it, so the recovered state is exactly the
// fully-written prefix of the log.
//
// Commit discipline: the server applies a mutation to the engine first and
// appends the record second, acknowledging only after both succeed. A crash
// between apply and append loses at most that unacknowledged suffix — the
// cluster coordinator re-delivers it during re-admission (idempotently), so
// acknowledged writes are never lost and replay never re-applies a record
// the engine rejected.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"simcloud/internal/mindex"
)

// SyncPolicy selects the durability of each append.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append: a record is on stable storage
	// before the mutation is acknowledged, surviving OS crashes and power
	// loss.
	SyncAlways SyncPolicy = iota
	// SyncNever writes through the OS page cache without fsync: records
	// survive a process kill (the kernel holds the written bytes) but a
	// machine crash may lose the unflushed tail.
	SyncNever
	// SyncGroup groups fsyncs across appends (group commit): an append
	// fsyncs only when DefaultGroupWindow appends have accumulated since
	// the last sync; Flush syncs the remainder on demand. The streaming
	// ingest path flushes before acknowledging end-of-stream, so a bulk
	// load pays one fsync per window instead of one per chunk while the
	// completion ack still promises stable storage. Between flushes a
	// machine crash may lose up to a window of acknowledged chunks — the
	// cluster coordinator's re-admission re-delivers them, exactly like
	// the SyncNever tail.
	SyncGroup
)

// DefaultGroupWindow is the number of appends SyncGroup accumulates
// between fsyncs.
const DefaultGroupWindow = 32

// String returns the policy's -wal-sync flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	case SyncGroup:
		return "group"
	}
	return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
}

// ParseSyncPolicy maps the -wal-sync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	case "group":
		return SyncGroup, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, group or never)", s)
}

// Op identifies a logged mutation.
type Op uint8

// Logged mutation kinds.
const (
	OpInsert Op = 1
	OpDelete Op = 2
)

// Record is one logged mutation: the operation plus the entries it applied
// (full entries for an insert, delete references — ID plus permutation
// prefix — for a delete, exactly the wire request contents).
type Record struct {
	Op      Op
	Entries []mindex.Entry
}

// FileName is the log file inside the WAL directory.
const FileName = "wal.log"

// maxRecordSize bounds a record body against corrupted length prefixes; a
// longer "record" is treated as a torn tail.
const maxRecordSize = 1 << 30

// Log is an append-only mutation log. Appends are serialized internally;
// a Log is safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	policy SyncPolicy
	size   int64
	// pending counts appends since the last fsync under SyncGroup.
	pending int
}

// Open opens (creating if needed) the log in dir, replays the existing
// records, truncates any torn tail, and returns the log positioned for
// appending plus the recovered records in append order.
func Open(dir string, policy SyncPolicy) (*Log, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	recs, good, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the torn tail (if any) so the next append starts at a record
	// boundary; replay already excluded it.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	return &Log{f: f, path: path, policy: policy, size: good}, recs, nil
}

// scan reads every intact record from the start of f, returning the records
// and the offset just past the last intact one.
func scan(f *os.File) ([]Record, int64, error) {
	var recs []Record
	var good int64
	r := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, r); err != nil {
			// EOF exactly at a boundary is a clean end; a short header is a
			// torn tail. Either way the intact prefix ends at good.
			return recs, good, nil
		}
		length := binary.LittleEndian.Uint32(r[:4])
		sum := binary.LittleEndian.Uint32(r[4:])
		if length == 0 || length > maxRecordSize {
			return recs, good, nil // corrupt length: torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, good, nil // short body: torn tail
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, good, nil // corrupt body: torn tail
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, good, nil // undecodable body: torn tail
		}
		recs = append(recs, rec)
		good += 8 + int64(length)
	}
}

var errBadRecord = errors.New("wal: malformed record payload")

func encodeRecord(rec Record) []byte {
	size := 5
	for _, e := range rec.Entries {
		size += mindex.EncodedEntrySize(e)
	}
	out := make([]byte, 0, size)
	out = append(out, byte(rec.Op))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rec.Entries)))
	for _, e := range rec.Entries {
		out = mindex.AppendEntry(out, e)
	}
	return out
}

func decodeRecord(p []byte) (Record, error) {
	if len(p) < 5 {
		return Record{}, errBadRecord
	}
	rec := Record{Op: Op(p[0])}
	if rec.Op != OpInsert && rec.Op != OpDelete {
		return Record{}, errBadRecord
	}
	n := int(binary.LittleEndian.Uint32(p[1:5]))
	p = p[5:]
	// A serialized entry is at least 20 bytes (see the mindex codec).
	if n < 0 || n > len(p)/20+1 {
		return Record{}, errBadRecord
	}
	rec.Entries = make([]mindex.Entry, 0, n)
	for range n {
		e, rest, err := mindex.DecodeEntry(p)
		if err != nil {
			return Record{}, err
		}
		rec.Entries = append(rec.Entries, e)
		p = rest
	}
	if len(p) != 0 {
		return Record{}, errBadRecord
	}
	return rec, nil
}

// Append writes one record (and fsyncs it under SyncAlways). The record is
// durable — to the policy's standard — when Append returns.
func (l *Log) Append(rec Record) error {
	payload := encodeRecord(rec)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	switch l.policy {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	case SyncGroup:
		l.pending++
		if l.pending >= DefaultGroupWindow {
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.pending = 0
		}
	}
	l.size += int64(8 + len(payload))
	return nil
}

// Flush forces appended records onto stable storage regardless of policy:
// after Flush returns, every prior Append is as durable as SyncAlways would
// have made it. Under SyncAlways it is a no-op (each append already
// synced); under SyncGroup it closes the current window. The streaming
// ingest path calls it before acknowledging end-of-stream.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if l.policy == SyncAlways {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.pending = 0
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }

// Reset truncates the log to empty. Call it only after a snapshot covering
// every logged mutation has been durably saved (the snapshot-plus-truncate
// compaction step): after Reset, recovery is snapshot restore plus replay of
// whatever is appended afterwards.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size = 0
	l.pending = 0
	return nil
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Applier is the mutation surface replay drives; engine.ShardedIndex
// satisfies it.
type Applier interface {
	InsertBulk(entries []mindex.Entry) error
	Delete(refs []mindex.Entry) (int, error)
}

// Replay applies recovered records in log order. Because records are
// appended only after the engine accepted the mutation, replaying into a
// fresh engine reproduces the logged state exactly: inserts re-apply
// cleanly and deletes of already-absent IDs are skipped by the engine.
func Replay(recs []Record, a Applier) error {
	for i, rec := range recs {
		switch rec.Op {
		case OpInsert:
			if err := a.InsertBulk(rec.Entries); err != nil {
				return fmt.Errorf("wal: replaying record %d: %w", i, err)
			}
		case OpDelete:
			if _, err := a.Delete(rec.Entries); err != nil {
				return fmt.Errorf("wal: replaying record %d: %w", i, err)
			}
		default:
			return fmt.Errorf("wal: replaying record %d: unknown op %d", i, rec.Op)
		}
	}
	return nil
}
