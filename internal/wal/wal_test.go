package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"simcloud/internal/mindex"
)

func testEntry(id uint64) mindex.Entry {
	return mindex.Entry{
		ID:      id,
		Perm:    []int32{int32(id % 8), int32((id + 3) % 8), int32((id + 5) % 8)},
		Dists:   []float64{float64(id) * 0.25, float64(id) * 0.5},
		Payload: []byte{byte(id), byte(id >> 8), 0xAB},
		Vec:     []float32{float32(id), float32(id) + 0.5},
	}
}

func deleteRef(id uint64) mindex.Entry {
	return mindex.Entry{ID: id, Perm: []int32{int32(id % 8)}}
}

func testRecords() []Record {
	return []Record{
		{Op: OpInsert, Entries: []mindex.Entry{testEntry(1), testEntry(2), testEntry(3)}},
		{Op: OpInsert, Entries: []mindex.Entry{testEntry(4)}},
		{Op: OpDelete, Entries: []mindex.Entry{deleteRef(2), deleteRef(4)}},
	}
}

func mustOpen(t *testing.T, dir string, policy SyncPolicy) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir, policy)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, recs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := mustOpen(t, dir, SyncAlways)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := testRecords()
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	size := l.Size()
	if size == 0 {
		t.Fatal("Size() == 0 after appends")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := mustOpen(t, dir, SyncAlways)
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if l2.Size() != size {
		t.Fatalf("reopened size %d, want %d", l2.Size(), size)
	}
	// Appends after reopen extend, not clobber.
	extra := Record{Op: OpInsert, Entries: []mindex.Entry{testEntry(9)}}
	if err := l2.Append(extra); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	l2.Close()
	l3, got3 := mustOpen(t, dir, SyncAlways)
	defer l3.Close()
	if !reflect.DeepEqual(got3, append(want, extra)) {
		t.Fatalf("replay after reopen-append mismatch: got %d records", len(got3))
	}
}

// TestTornTailRecovery truncates the log at every byte offset of the final
// record (header byte 1 through last payload byte) and asserts replay
// recovers exactly the fully-written prefix — the crash-mid-append
// guarantee — under both fsync policies.
func TestTornTailRecovery(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncNever, SyncGroup} {
		var name string
		switch policy {
		case SyncAlways:
			name = "always"
		case SyncNever:
			name = "never"
		case SyncGroup:
			name = "group"
		}
		t.Run(name, func(t *testing.T) {
			master := t.TempDir()
			l, _ := mustOpen(t, master, policy)
			recs := testRecords()
			prefix := recs[:len(recs)-1]
			for _, rec := range prefix {
				if err := l.Append(rec); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			lastStart := l.Size()
			if err := l.Append(recs[len(recs)-1]); err != nil {
				t.Fatalf("Append: %v", err)
			}
			full := l.Size()
			l.Close()
			data, err := os.ReadFile(filepath.Join(master, FileName))
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(data)) != full {
				t.Fatalf("file is %d bytes, Size() said %d", len(data), full)
			}

			for cut := lastStart; cut < full; cut++ {
				dir := t.TempDir()
				if err := os.WriteFile(filepath.Join(dir, FileName), data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				l2, got := mustOpen(t, dir, policy)
				if !reflect.DeepEqual(got, prefix) {
					t.Fatalf("cut at byte %d: recovered %d records, want the %d-record prefix",
						cut, len(got), len(prefix))
				}
				// The torn tail must be gone from disk so the next append
				// starts at a record boundary.
				st, err := os.Stat(filepath.Join(dir, FileName))
				if err != nil {
					t.Fatal(err)
				}
				if st.Size() != lastStart {
					t.Fatalf("cut at byte %d: file not truncated to %d (got %d)",
						cut, lastStart, st.Size())
				}
				if err := l2.Append(recs[len(recs)-1]); err != nil {
					t.Fatalf("cut at byte %d: append after recovery: %v", cut, err)
				}
				l2.Close()
				_, again := mustOpen(t, dir, policy)
				if !reflect.DeepEqual(again, recs) {
					t.Fatalf("cut at byte %d: re-append then replay mismatch", cut)
				}
			}
		})
	}
}

// A flipped payload byte in a non-final record makes everything from that
// record on a torn tail: replay keeps only the records before it.
func TestCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, SyncNever)
	recs := testRecords()
	var offsets []int64
	for _, rec := range recs {
		offsets = append(offsets, l.Size())
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[1]+8] ^= 0xFF // first payload byte of record 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := mustOpen(t, dir, SyncNever)
	defer l2.Close()
	if !reflect.DeepEqual(got, recs[:1]) {
		t.Fatalf("recovered %d records after mid-log corruption, want 1", len(got))
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, SyncAlways)
	for _, rec := range testRecords() {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Size() != 0 {
		t.Fatalf("Size() == %d after Reset", l.Size())
	}
	post := Record{Op: OpInsert, Entries: []mindex.Entry{testEntry(7)}}
	if err := l.Append(post); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, got := mustOpen(t, dir, SyncAlways)
	defer l2.Close()
	if !reflect.DeepEqual(got, []Record{post}) {
		t.Fatalf("replay after Reset: got %d records, want 1 (the post-Reset append)", len(got))
	}
}

type fakeApplier struct {
	inserted []mindex.Entry
	deleted  []uint64
}

func (a *fakeApplier) InsertBulk(entries []mindex.Entry) error {
	a.inserted = append(a.inserted, entries...)
	return nil
}

func (a *fakeApplier) Delete(refs []mindex.Entry) (int, error) {
	for _, r := range refs {
		a.deleted = append(a.deleted, r.ID)
	}
	return len(refs), nil
}

func TestReplay(t *testing.T) {
	var a fakeApplier
	if err := Replay(testRecords(), &a); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(a.inserted) != 4 {
		t.Fatalf("replayed %d inserts, want 4", len(a.inserted))
	}
	if !reflect.DeepEqual(a.deleted, []uint64{2, 4}) {
		t.Fatalf("replayed deletes %v, want [2 4]", a.deleted)
	}
}

// TestGroupCommitTornWindow crashes a group-commit log inside an unflushed
// window: a full window of appends plus a partial one, with the file cut at
// every byte offset of the unflushed tail — spanning several records, not
// just the last — and asserts recovery keeps exactly the intact record
// prefix and truncates to a record boundary the next append extends cleanly.
func TestGroupCommitTornWindow(t *testing.T) {
	master := t.TempDir()
	l, _ := mustOpen(t, master, SyncGroup)
	// One full window (synced) plus a three-record unflushed tail.
	var recs []Record
	var offsets []int64 // start offset of each record
	for i := 0; i < DefaultGroupWindow+3; i++ {
		rec := Record{Op: OpInsert, Entries: []mindex.Entry{testEntry(uint64(i + 1))}}
		recs = append(recs, rec)
		offsets = append(offsets, l.Size())
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if l.pending != 3 {
		t.Fatalf("pending = %d after window+3 appends, want 3", l.pending)
	}
	full := l.Size()
	l.Close()
	data, err := os.ReadFile(filepath.Join(master, FileName))
	if err != nil {
		t.Fatal(err)
	}

	// boundary returns the last record boundary at or before cut, and the
	// number of records wholly before it.
	boundary := func(cut int64) (int64, int) {
		for i := len(offsets) - 1; i >= 0; i-- {
			if offsets[i] <= cut {
				end := full
				if i+1 < len(offsets) {
					end = offsets[i+1]
				}
				if cut >= end {
					return end, i + 1
				}
				return offsets[i], i
			}
		}
		return 0, 0
	}

	for cut := offsets[DefaultGroupWindow]; cut < full; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, FileName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantOff, wantN := boundary(cut)
		l2, got := mustOpen(t, dir, SyncGroup)
		if !reflect.DeepEqual(got, recs[:wantN]) {
			t.Fatalf("cut at byte %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		st, err := os.Stat(filepath.Join(dir, FileName))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != wantOff {
			t.Fatalf("cut at byte %d: truncated to %d, want boundary %d", cut, st.Size(), wantOff)
		}
		extra := Record{Op: OpInsert, Entries: []mindex.Entry{testEntry(999)}}
		if err := l2.Append(extra); err != nil {
			t.Fatalf("cut at byte %d: append after recovery: %v", cut, err)
		}
		if err := l2.Flush(); err != nil {
			t.Fatalf("cut at byte %d: flush: %v", cut, err)
		}
		l2.Close()
		_, again := mustOpen(t, dir, SyncGroup)
		if !reflect.DeepEqual(again, append(recs[:wantN:wantN], extra)) {
			t.Fatalf("cut at byte %d: re-append then replay mismatch", cut)
		}
	}
}

// TestFlush pins the window bookkeeping: group appends below the window
// leave records pending, Flush closes the window, a window-crossing append
// syncs on its own, and Flush under always is a no-op that still succeeds.
func TestFlush(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, SyncGroup)
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{Op: OpInsert, Entries: []mindex.Entry{testEntry(uint64(i + 1))}}); err != nil {
			t.Fatal(err)
		}
	}
	if l.pending != 5 {
		t.Fatalf("pending = %d, want 5", l.pending)
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if l.pending != 0 {
		t.Fatalf("pending = %d after Flush, want 0", l.pending)
	}
	for i := 0; i < DefaultGroupWindow; i++ {
		if err := l.Append(Record{Op: OpInsert, Entries: []mindex.Entry{testEntry(uint64(100 + i))}}); err != nil {
			t.Fatal(err)
		}
	}
	if l.pending != 0 {
		t.Fatalf("pending = %d after a full window, want 0 (window sync)", l.pending)
	}
	l.Close()

	la, _ := mustOpen(t, dir, SyncAlways)
	defer la.Close()
	if err := la.Flush(); err != nil {
		t.Fatalf("Flush under SyncAlways: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseSyncPolicy("never"); err != nil || p != SyncNever {
		t.Fatalf("never: %v %v", p, err)
	}
	if p, err := ParseSyncPolicy("group"); err != nil || p != SyncGroup {
		t.Fatalf("group: %v %v", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
