package engine

import "sync"

// pool is a bounded worker pool shared by every fan-out operation of one
// ShardedIndex. A fixed set of workers drains a single task channel, so the
// number of goroutines touching shards at any moment is capped regardless
// of how many searches are in flight — concurrent fan-outs interleave their
// tasks instead of multiplying goroutines.
type pool struct {
	tasks chan func()
	// mu makes close safe against in-flight run calls: run submits under
	// the read lock, close closes the channel under the write lock, so a
	// Close racing a search yields errClosed instead of a send-on-closed-
	// channel panic.
	mu     sync.RWMutex
	closed bool
}

// newPool starts workers goroutines draining the task channel.
func newPool(workers int) *pool {
	p := &pool{tasks: make(chan func())}
	for range workers {
		go func() {
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// close stops the workers once all queued tasks have drained. Idempotent;
// blocks until no run call is mid-submission.
func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}

// run executes fn(0..n-1) on the pool and blocks until all calls returned,
// reporting the error of the lowest-numbered failing task (deterministic
// regardless of scheduling). A pool closed before or during submission
// yields errClosed.
func (p *pool) run(n int, fn func(i int) error) error {
	if n == 1 {
		return fn(0)
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return errClosed
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range n {
		p.tasks <- func() {
			defer wg.Done()
			errs[i] = fn(i)
		}
	}
	p.mu.RUnlock()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
