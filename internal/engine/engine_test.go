package engine

import (
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/stats"
)

const testPivots = 12

func testCfg(shards int) mindex.Config {
	return mindex.Config{
		NumPivots:      testPivots,
		MaxLevel:       5,
		BucketCapacity: 20,
		Storage:        mindex.StorageMemory,
		Ranking:        mindex.RankFootrule,
		Shards:         shards,
	}
}

// testWorld generates a deterministic collection with precomputed entries
// and query vectors in pivot space.
type testWorld struct {
	ds      *dataset.Dataset
	pv      *pivot.Set
	entries []mindex.Entry
	queries []metric.Vector
}

func newWorld(t testing.TB, seed uint64, n, queries int) *testWorld {
	t.Helper()
	ds := dataset.Clustered(seed, n+queries, 6, 4, metric.L2{})
	rng := rand.New(rand.NewPCG(seed, 7))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects[:n], testPivots)
	w := &testWorld{ds: ds, pv: pv}
	for _, o := range ds.Objects[:n] {
		dists := pv.Distances(o.Vec)
		w.entries = append(w.entries, mindex.Entry{
			ID:    o.ID,
			Perm:  pivot.Permutation(dists),
			Dists: dists,
		})
	}
	for _, o := range ds.Objects[n:] {
		w.queries = append(w.queries, o.Vec)
	}
	return w
}

func (w *testWorld) query(q metric.Vector) (qDists []float64, aq mindex.ApproxQuery) {
	qDists = w.pv.Distances(q)
	return qDists, mindex.ApproxQuery{Ranks: pivot.Ranks(pivot.Permutation(qDists)), Dists: qDists}
}

// exactKNN returns the IDs of the k nearest indexed objects by brute force.
func (w *testWorld) exactKNN(q metric.Vector, k int) []uint64 {
	type pair struct {
		id uint64
		d  float64
	}
	ps := make([]pair, len(w.entries))
	for i, e := range w.entries {
		ps[i] = pair{e.ID, w.ds.Dist.Dist(q, w.ds.Objects[i].Vec)}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].d != ps[j].d {
			return ps[i].d < ps[j].d
		}
		return ps[i].id < ps[j].id
	})
	out := make([]uint64, 0, k)
	for _, p := range ps[:min(k, len(ps))] {
		out = append(out, p.id)
	}
	return out
}

func ids(entries []mindex.Entry) []uint64 {
	out := make([]uint64, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out
}

func sortedIDs(entries []mindex.Entry) []uint64 {
	out := ids(entries)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSingleShardMatchesBareIndex: Shards=1 must reproduce the bare
// mindex.Index byte for byte — same candidate lists in the same order.
func TestSingleShardMatchesBareIndex(t *testing.T) {
	w := newWorld(t, 1, 600, 10)
	bare, err := mindex.New(testCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	eng, err := New(testCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := bare.InsertBulk(w.entries); err != nil {
		t.Fatal(err)
	}
	if err := eng.InsertBulk(w.entries); err != nil {
		t.Fatal(err)
	}
	if eng.Size() != bare.Size() {
		t.Fatalf("size %d != %d", eng.Size(), bare.Size())
	}
	for _, q := range w.queries {
		qDists, aq := w.query(q)
		wantRange, err := bare.RangeByDists(qDists, 8)
		if err != nil {
			t.Fatal(err)
		}
		gotRange, err := eng.RangeByDists(qDists, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Range candidate order depends on map iteration and is not part of
		// the index contract; the candidate *set* is.
		if !equalIDs(sortedIDs(gotRange), sortedIDs(wantRange)) {
			t.Fatalf("range sets differ: %v vs %v", sortedIDs(gotRange), sortedIDs(wantRange))
		}
		wantApprox, err := bare.ApproxCandidates(aq, 100)
		if err != nil {
			t.Fatal(err)
		}
		gotApprox, err := eng.ApproxCandidates(aq, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(ids(gotApprox), ids(wantApprox)) {
			t.Fatalf("approx order differs: %v vs %v", ids(gotApprox), ids(wantApprox))
		}
		wantFirst, err := bare.FirstCellCandidates(aq)
		if err != nil {
			t.Fatal(err)
		}
		gotFirst, err := eng.FirstCellCandidates(aq)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(ids(gotFirst), ids(wantFirst)) {
			t.Fatalf("first-cell differs: %v vs %v", ids(gotFirst), ids(wantFirst))
		}
	}
}

// TestShardedEquivalence: for several shard counts, range queries return
// the same result set as a single shard, and approximate candidates lose no
// recall against brute-force ground truth.
func TestShardedEquivalence(t *testing.T) {
	w := newWorld(t, 2, 900, 12)
	const k, candSize = 10, 150
	single, err := New(testCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.InsertBulk(w.entries); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			eng, err := New(testCfg(shards))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			if err := eng.InsertBulk(w.entries); err != nil {
				t.Fatal(err)
			}
			if eng.Size() != len(w.entries) {
				t.Fatalf("size = %d, want %d", eng.Size(), len(w.entries))
			}
			st := eng.TreeStats()
			if st.Entries != len(w.entries) || st.TotalBucket != len(w.entries) {
				t.Fatalf("stats %+v for %d entries", st, len(w.entries))
			}
			var recallSingle, recallSharded float64
			for _, q := range w.queries {
				qDists, aq := w.query(q)
				want, err := single.RangeByDists(qDists, 8)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.RangeByDists(qDists, 8)
				if err != nil {
					t.Fatal(err)
				}
				if !equalIDs(sortedIDs(got), sortedIDs(want)) {
					t.Fatalf("range result sets differ: %d vs %d entries", len(got), len(want))
				}
				exact := w.exactKNN(q, k)
				singleCands, err := single.ApproxCandidates(aq, candSize)
				if err != nil {
					t.Fatal(err)
				}
				shardedCands, err := eng.ApproxCandidates(aq, candSize)
				if err != nil {
					t.Fatal(err)
				}
				// Eager root splits make shard cells (and promises) coincide
				// with the unsharded tree's, so the merged candidate list must
				// reproduce the single-index list exactly, order included.
				if !equalIDs(ids(shardedCands), ids(singleCands)) {
					t.Fatalf("approx candidates diverge from single shard:\n got %v\nwant %v",
						ids(shardedCands), ids(singleCands))
				}
				recallSingle += stats.Recall(ids(singleCands), exact)
				recallSharded += stats.Recall(ids(shardedCands), exact)
			}
			if recallSharded < recallSingle {
				t.Fatalf("sharded recall %.2f%% below single-shard %.2f%%",
					recallSharded/float64(len(w.queries)), recallSingle/float64(len(w.queries)))
			}
		})
	}
}

// TestConcurrentHammer drives a ShardedIndex with concurrent Insert +
// RangeByDists + ApproxCandidates from many goroutines (run under -race in
// CI), then asserts result-set equality against a 1-shard index holding the
// same data.
func TestConcurrentHammer(t *testing.T) {
	w := newWorld(t, 3, 1200, 8)
	eng, err := New(testCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const writers = 6
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, writers+4)

	// Writers: partition the collection among inserting goroutines.
	for wr := range writers {
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			for i := wr; i < len(w.entries); i += writers {
				if err := eng.Insert(w.entries[i]); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	// Readers: hammer searches while inserts are in flight. Results are
	// unspecified mid-ingest; only absence of races/errors matters here.
	// The iteration count is bounded (not run-until-stopped) so the test
	// cannot livelock on a single-CPU machine: an unbounded query loop
	// ping-pongs with the fan-out pool workers through channel handoffs,
	// and the Go scheduler can keep that pair hot while the writer
	// goroutines starve — with finite reader work, the writers always get
	// the CPU eventually and the stop channel merely ends readers early.
	for r := range 4 {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for i := 0; i < 300; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := w.queries[(r+i)%len(w.queries)]
				qDists, aq := w.query(q)
				if _, err := eng.RangeByDists(qDists, 6); err != nil {
					errCh <- err
					return
				}
				if _, err := eng.ApproxCandidates(aq, 80); err != nil {
					errCh <- err
					return
				}
				if _, err := eng.FirstCellCandidates(aq); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiesced: the sharded engine must now answer exactly like a 1-shard
	// index over the same data. The M-Index tree shape is arrival-order
	// independent (a cell splits iff its final count exceeds capacity), but
	// within-bucket order is not, so the reference index is built in the
	// engine's own per-cell arrival order (AllEntries preserves it) — any
	// global order consistent with the per-cell orders yields identical
	// buckets, making even the approximate candidate list exactly equal.
	arrived, err := eng.AllEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(arrived) != len(w.entries) {
		t.Fatalf("post-hammer entry count %d, want %d", len(arrived), len(w.entries))
	}
	single, err := New(testCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.InsertBulk(arrived); err != nil {
		t.Fatal(err)
	}
	for _, q := range w.queries {
		qDists, aq := w.query(q)
		want, err := single.RangeByDists(qDists, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.RangeByDists(qDists, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(got), sortedIDs(want)) {
			t.Fatalf("post-hammer range differs: %d vs %d entries", len(got), len(want))
		}
		exact := w.exactKNN(q, 10)
		singleCands, err := single.ApproxCandidates(aq, 150)
		if err != nil {
			t.Fatal(err)
		}
		shardedCands, err := eng.ApproxCandidates(aq, 150)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(ids(shardedCands), ids(singleCands)) {
			t.Fatal("post-hammer approx candidates diverge from 1-shard index")
		}
		if r1, r2 := stats.Recall(ids(shardedCands), exact), stats.Recall(ids(singleCands), exact); r1 < r2 {
			t.Fatalf("post-hammer approx recall %.1f%% below single-shard %.1f%%", r1, r2)
		}
	}
}

// TestShardRouting: every entry must land in the shard of its first
// permutation element, keeping first-level Voronoi cells shard-local.
func TestShardRouting(t *testing.T) {
	w := newWorld(t, 4, 400, 1)
	eng, err := New(testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.InsertBulk(w.entries); err != nil {
		t.Fatal(err)
	}
	for i := range eng.NumShards() {
		entries, err := eng.Shard(i).AllEntries()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if int(e.Perm[0])%eng.NumShards() != i {
				t.Fatalf("entry with Perm[0]=%d found in shard %d of %d", e.Perm[0], i, eng.NumShards())
			}
		}
	}
}

// TestShardedSnapshotRoundTrip persists a 4-shard disk engine and restores
// it, checking the restored engine answers identically.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	w := newWorld(t, 5, 500, 4)
	dir := t.TempDir()
	cfg := testCfg(4)
	cfg.Storage = mindex.StorageDisk
	cfg.DiskPath = filepath.Join(dir, "buckets")
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InsertBulk(w.entries); err != nil {
		t.Fatal(err)
	}
	qDists, aq := w.query(w.queries[0])
	wantRange, err := eng.RangeByDists(qDists, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantApprox, err := eng.ApproxCandidates(aq, 120)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "engine.snap")
	if err := eng.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Size() != len(w.entries) {
		t.Fatalf("restored size %d, want %d", restored.Size(), len(w.entries))
	}
	gotRange, err := restored.RangeByDists(qDists, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(gotRange), sortedIDs(wantRange)) {
		t.Fatal("restored range result differs")
	}
	gotApprox, err := restored.ApproxCandidates(aq, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(ids(gotApprox), ids(wantApprox)) {
		t.Fatal("restored approx candidates differ")
	}
}

// TestSnapshotShardCountMismatch: restarting with a different shard count
// than the snapshot was saved with must fail loudly — silently loading a
// subset of shard files (or an empty index) would lose data.
func TestSnapshotShardCountMismatch(t *testing.T) {
	w := newWorld(t, 7, 300, 1)
	dir := t.TempDir()
	cfg := testCfg(4)
	cfg.Storage = mindex.StorageDisk
	cfg.DiskPath = filepath.Join(dir, "buckets")
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InsertBulk(w.entries); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "snap")
	if err := eng.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 8} {
		badCfg := cfg
		badCfg.Shards = shards
		if _, err := LoadSnapshot(badCfg, snap); err == nil {
			t.Fatalf("4-shard snapshot loaded with Shards=%d", shards)
		}
		if ok, err := SnapshotExists(badCfg, snap); shards != 8 && (err == nil || ok) {
			// Shards=8 passes the shape check (no shard-008 file) and fails
			// later at the missing shard-004; smaller counts must be caught
			// up front.
			t.Fatalf("SnapshotExists(Shards=%d) = %v, %v; want shape error", shards, ok, err)
		}
	}
	if ok, err := SnapshotExists(cfg, snap); err != nil || !ok {
		t.Fatalf("SnapshotExists(matching cfg) = %v, %v", ok, err)
	}
	missing := filepath.Join(dir, "nothing-here")
	if ok, err := SnapshotExists(cfg, missing); err != nil || ok {
		t.Fatalf("SnapshotExists(missing) = %v, %v", ok, err)
	}
}

// TestClosedEngine: operations after Close fail cleanly instead of
// panicking on the stopped worker pool.
func TestClosedEngine(t *testing.T) {
	eng, err := New(testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Insert(mindex.Entry{Perm: []int32{0, 1, 2, 3, 4}}); err == nil {
		t.Fatal("insert after close succeeded")
	}
	if _, err := eng.RangeByDists(make([]float64, testPivots), 1); err == nil {
		t.Fatal("range after close succeeded")
	}
	if _, err := eng.AllEntries(); err == nil {
		t.Fatal("all-entries after close succeeded")
	}
}

// TestShardCountValidated: engine-level shard counts outside 0..MaxShards
// must be rejected (the per-shard configs are rewritten to Shards=1, so
// mindex validation alone would let them through).
func TestShardCountValidated(t *testing.T) {
	for _, shards := range []int{-1, mindex.MaxShards + 1} {
		cfg := testCfg(shards)
		if _, err := New(cfg); err == nil {
			t.Fatalf("Shards=%d accepted", shards)
		}
	}
}

// TestInvalidEntryRejected: routing requires a non-empty permutation with
// an in-range first element — wire-decoded entries are unvalidated, so a
// hostile Perm[0] must become an error, never a negative shard index.
func TestInvalidEntryRejected(t *testing.T) {
	eng, err := New(testCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Insert(mindex.Entry{}); err == nil {
		t.Fatal("empty permutation accepted")
	}
	if err := eng.InsertBulk([]mindex.Entry{{}}); err == nil {
		t.Fatal("empty permutation accepted in bulk")
	}
	hostile := mindex.Entry{ID: 1, Perm: []int32{-1, 0, 1, 2, 3}}
	if err := eng.Insert(hostile); err == nil {
		t.Fatal("negative Perm[0] accepted")
	}
	if err := eng.InsertBulk([]mindex.Entry{hostile}); err == nil {
		t.Fatal("negative Perm[0] accepted in bulk")
	}
	if err := eng.Insert(mindex.Entry{ID: 2, Perm: []int32{testPivots, 0, 1, 2, 3}}); err == nil {
		t.Fatal("out-of-range Perm[0] accepted")
	}
}

// TestCloseRacingSearches: Close concurrent with fan-out searches must
// yield clean errors, never a send-on-closed-channel panic.
func TestCloseRacingSearches(t *testing.T) {
	w := newWorld(t, 6, 400, 4)
	for range 10 {
		eng, err := New(testCfg(8))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.InsertBulk(w.entries); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for r := range 4 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					_, aq := w.query(w.queries[(r+i)%len(w.queries)])
					if _, err := eng.ApproxCandidates(aq, 50); err != nil {
						return // errClosed: expected once Close lands
					}
				}
			}()
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}

// --- Mutability ---------------------------------------------------------

// mutationLog tracks what the surviving index contents should be after an
// interleaving of inserts, deletes and updates: records in arrival order,
// each either alive or superseded.
type mutationLog struct {
	records []mindex.Entry
	dead    []bool
	alive   map[uint64]int // live ID -> index into records
}

func newMutationLog() *mutationLog {
	return &mutationLog{alive: map[uint64]int{}}
}

func (l *mutationLog) insert(e mindex.Entry) {
	l.records = append(l.records, e)
	l.dead = append(l.dead, false)
	l.alive[e.ID] = len(l.records) - 1
}

func (l *mutationLog) delete(id uint64) {
	l.dead[l.alive[id]] = true
	delete(l.alive, id)
}

func (l *mutationLog) update(e mindex.Entry) {
	if at, ok := l.alive[e.ID]; ok {
		l.dead[at] = true
	}
	l.insert(e)
}

// survivors returns the live records in arrival order — the exact insert
// sequence a rebuilt reference index must replay.
func (l *mutationLog) survivors() []mindex.Entry {
	out := make([]mindex.Entry, 0, len(l.alive))
	for i, e := range l.records {
		if !l.dead[i] {
			out = append(out, e)
		}
	}
	return out
}

func (l *mutationLog) randomLive(rng *rand.Rand) (uint64, bool) {
	if len(l.alive) == 0 {
		return 0, false
	}
	// Deterministic choice: pick the k-th smallest live ID.
	ids := make([]uint64, 0, len(l.alive))
	for id := range l.alive {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.IntN(len(ids))], true
}

// TestMutationEquivalence is the headline guarantee of the mutable index:
// after any interleaving of inserts, deletes, updates and compactions —
// ended by a full Compact — range candidate sets and ranked approximate
// candidate lists are byte-identical to those of a fresh engine into which
// only the surviving entries were inserted, in their original arrival
// order. Exercised on 1 and 4 shards.
func TestMutationEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			w := newWorld(t, 21, 1600, 8)
			rng := rand.New(rand.NewPCG(21, uint64(shards)))
			eng, err := New(testCfg(shards))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			log := newMutationLog()
			next := 0
			for step := 0; step < 2600 && next < len(w.entries); step++ {
				switch p := rng.Float64(); {
				case p < 0.55: // insert the next fresh entry
					e := w.entries[next]
					next++
					if err := eng.Insert(e); err != nil {
						t.Fatal(err)
					}
					log.insert(e)
				case p < 0.80: // delete a random live entry, routed by its perm
					id, ok := log.randomLive(rng)
					if !ok {
						continue
					}
					ref := mindex.Entry{ID: id, Perm: log.records[log.alive[id]].Perm}
					n, err := eng.Delete([]mindex.Entry{ref})
					if err != nil {
						t.Fatal(err)
					}
					if n != 1 {
						t.Fatalf("step %d: deleted %d entries for a live ID", step, n)
					}
					log.delete(id)
				case p < 0.92: // update: same ID, fresh pivot metadata (the object moved)
					id, ok := log.randomLive(rng)
					if !ok || next >= len(w.entries) {
						continue
					}
					donor := w.entries[next]
					next++
					ne := mindex.Entry{ID: id, Perm: donor.Perm, Dists: donor.Dists}
					if err := eng.Update(ne); err != nil {
						t.Fatal(err)
					}
					log.update(ne)
				default: // interleaved compaction
					if err := eng.Compact(); err != nil {
						t.Fatal(err)
					}
				}
				if eng.Size() != len(log.alive) {
					t.Fatalf("step %d: size = %d, want %d live", step, eng.Size(), len(log.alive))
				}
			}
			if err := eng.Compact(); err != nil {
				t.Fatal(err)
			}
			if eng.Dead() != 0 {
				t.Fatalf("dead = %d after final compact", eng.Dead())
			}

			fresh, err := New(testCfg(shards))
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			for _, e := range log.survivors() {
				if err := fresh.Insert(e); err != nil {
					t.Fatal(err)
				}
			}

			if a, b := eng.TreeStats(), fresh.TreeStats(); a != b {
				t.Fatalf("tree stats diverge:\n mutated %+v\n rebuilt %+v", a, b)
			}
			for qi, q := range w.queries {
				qDists, aq := w.query(q)
				for _, r := range []float64{2, 6, 1e9} {
					got, err := eng.RangeByDists(qDists, r)
					if err != nil {
						t.Fatal(err)
					}
					want, err := fresh.RangeByDists(qDists, r)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("query %d: range(r=%g) diverges (%d vs %d candidates)", qi, r, len(got), len(want))
					}
				}
				got, err := eng.ApproxCandidates(aq, 400)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.ApproxCandidates(aq, 400)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d: approx candidate lists diverge", qi)
				}
				gotFC, err := eng.FirstCellCandidates(aq)
				if err != nil {
					t.Fatal(err)
				}
				wantFC, err := fresh.FirstCellCandidates(aq)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotFC, wantFC) {
					t.Fatalf("query %d: first-cell candidates diverge", qi)
				}
			}
		})
	}
}

// TestMutationEquivalenceAutoCompact repeats a shorter interleaving with
// the auto-compaction policy enabled: background shard compactions must
// not change the final (explicitly compacted) state.
func TestMutationEquivalenceAutoCompact(t *testing.T) {
	w := newWorld(t, 22, 800, 4)
	cfg := testCfg(4)
	cfg.AutoCompactFraction = 0.2
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := rand.New(rand.NewPCG(22, 5))
	log := newMutationLog()
	next := 0
	for step := 0; step < 1200 && next < len(w.entries); step++ {
		if rng.Float64() < 0.6 {
			e := w.entries[next]
			next++
			if err := eng.Insert(e); err != nil {
				t.Fatal(err)
			}
			log.insert(e)
			continue
		}
		id, ok := log.randomLive(rng)
		if !ok {
			continue
		}
		ref := mindex.Entry{ID: id, Perm: log.records[log.alive[id]].Perm}
		if _, err := eng.Delete([]mindex.Entry{ref}); err != nil {
			t.Fatal(err)
		}
		log.delete(id)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for _, e := range log.survivors() {
		if err := fresh.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := eng.TreeStats(), fresh.TreeStats(); a != b {
		t.Fatalf("tree stats diverge under auto-compaction:\n mutated %+v\n rebuilt %+v", a, b)
	}
	qDists, aq := w.query(w.queries[0])
	got, err := eng.RangeByDists(qDists, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.RangeByDists(qDists, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("range candidates diverge under auto-compaction")
	}
	gotA, err := eng.ApproxCandidates(aq, 300)
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := fresh.ApproxCandidates(aq, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatal("approx candidates diverge under auto-compaction")
	}
}

// TestMutationRaceHammer drives concurrent inserts, routed deletes,
// compactions and searches against a sharded engine (run under -race in
// CI). Each mutator owns a disjoint ID range, so the final live count is
// exactly checkable.
func TestMutationRaceHammer(t *testing.T) {
	w := newWorld(t, 23, 2000, 4)
	eng, err := New(testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const mutators = 4
	perMutator := len(w.entries) / mutators
	var inserted, deleted atomic.Int64
	var mutWg, searchWg sync.WaitGroup
	stop := make(chan struct{})
	for m := range mutators {
		mutWg.Add(1)
		go func() {
			defer mutWg.Done()
			rng := rand.New(rand.NewPCG(23, uint64(m)))
			own := w.entries[m*perMutator : (m+1)*perMutator]
			live := make([]mindex.Entry, 0, len(own))
			for _, e := range own {
				if err := eng.Insert(e); err != nil {
					t.Error(err)
					return
				}
				inserted.Add(1)
				live = append(live, e)
				// Occasionally delete one of this mutator's own entries.
				if len(live) > 10 && rng.Float64() < 0.3 {
					at := rng.IntN(len(live))
					victim := live[at]
					live = append(live[:at], live[at+1:]...)
					n, err := eng.Delete([]mindex.Entry{{ID: victim.ID, Perm: victim.Perm}})
					if err != nil {
						t.Error(err)
						return
					}
					deleted.Add(int64(n))
				}
				if rng.Float64() < 0.01 {
					if err := eng.Compact(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	// Searchers hammer all query paths while the mutators run. Bounded
	// iterations, for the same single-CPU livelock reason as
	// TestConcurrentHammer's readers: an unbounded query loop can starve
	// the mutator goroutines forever, and stop then never closes.
	for r := range 3 {
		searchWg.Add(1)
		go func() {
			defer searchWg.Done()
			for i := 0; i < 300; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qDists, aq := w.query(w.queries[(r+i)%len(w.queries)])
				if _, err := eng.RangeByDists(qDists, 5); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.ApproxCandidates(aq, 100); err != nil {
					t.Error(err)
					return
				}
				// Yield between iterations: on a single-core runner this
				// spin loop (plus the pool's channel ping-pong and the GC
				// assists its allocation rate triggers) can otherwise
				// starve the mutator goroutines off the run queue for
				// minutes, stalling the whole test.
				runtime.Gosched()
			}
		}()
	}
	// Wait for the mutators, then stop the searchers.
	mutWg.Wait()
	close(stop)
	searchWg.Wait()

	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	want := int(inserted.Load() - deleted.Load())
	if eng.Size() != want {
		t.Fatalf("final size = %d, want %d (%d inserted, %d deleted)",
			eng.Size(), want, inserted.Load(), deleted.Load())
	}
	if eng.Dead() != 0 {
		t.Fatalf("dead = %d after final compact", eng.Dead())
	}
}

// TestUpdateRejectsInvalidReplacementWithoutDataLoss: an Update whose
// replacement entry fails validation must leave the existing record
// searchable — the old record may only be tombstoned after the new one is
// known to be insertable.
func TestUpdateRejectsInvalidReplacementWithoutDataLoss(t *testing.T) {
	w := newWorld(t, 24, 300, 2)
	eng, err := New(testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.InsertBulk(w.entries); err != nil {
		t.Fatal(err)
	}
	victim := w.entries[0]
	// Valid routing prefix, but shorter than MaxLevel: route() passes,
	// shard insert validation must fail — before the delete happens.
	bad := mindex.Entry{ID: victim.ID, Perm: victim.Perm[:1]}
	if err := eng.Update(bad); err == nil {
		t.Fatal("invalid update accepted")
	}
	if eng.Size() != len(w.entries) {
		t.Fatalf("size = %d after failed update, want %d", eng.Size(), len(w.entries))
	}
	qDists, _ := w.query(w.ds.Objects[0].Vec)
	cands, err := eng.RangeByDists(qDists, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range cands {
		found = found || e.ID == victim.ID
	}
	if !found {
		t.Fatal("failed update destroyed the existing entry")
	}
}
