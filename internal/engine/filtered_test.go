package engine

import (
	"reflect"
	"testing"

	"simcloud/internal/mindex"
)

// TestFilteredShardedEquivalence: every pivot-filtered read over a full
// sharded engine must return exactly what the unfiltered read returns over
// an engine holding only the allowed first-level cells — the contract the
// replicated coordinator's per-owner read assignment depends on.
func TestFilteredShardedEquivalence(t *testing.T) {
	w := newWorld(t, 31, 1500, 20)
	allowed := []int32{0, 1, 4, 7, 9, 11}
	filter, err := mindex.NewPivotFilter(testPivots, allowed)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4} {
		cfg := testCfg(shards)
		// Shards=1 must also pass: a federated single-shard node runs with
		// the eager root split, matching the subset engine's shape.
		cfg.EagerRootSplit = true
		full, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer full.Close()
		subset, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer subset.Close()

		var subsetEntries []mindex.Entry
		for _, e := range w.entries {
			if len(e.Perm) > 0 && filter.Allows(e.Perm[0]) {
				subsetEntries = append(subsetEntries, e)
			}
		}
		if err := full.InsertBulk(w.entries); err != nil {
			t.Fatal(err)
		}
		if err := subset.InsertBulk(subsetEntries); err != nil {
			t.Fatal(err)
		}

		for qi, q := range w.queries {
			qDists, aq := w.query(q)

			gotR, err := full.RangeByDistsFiltered(qDists, 2.0, filter)
			if err != nil {
				t.Fatal(err)
			}
			wantR, err := subset.RangeByDists(qDists, 2.0)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(ids(gotR), ids(wantR)) {
				t.Fatalf("shards=%d query %d: filtered range differs (%d vs %d entries)",
					shards, qi, len(gotR), len(wantR))
			}

			gotA, err := full.ApproxCandidatesRankedFiltered(aq, 200, filter)
			if err != nil {
				t.Fatal(err)
			}
			wantA, err := subset.ApproxCandidatesRanked(aq, 200)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotA, wantA) {
				t.Fatalf("shards=%d query %d: filtered approx differs (%d vs %d candidates)",
					shards, qi, len(gotA), len(wantA))
			}

			gotF, gotP, gotPre, err := full.FirstCellRankedFiltered(aq, filter)
			if err != nil {
				t.Fatal(err)
			}
			wantF, wantP, wantPre, err := subset.FirstCellRanked(aq)
			if err != nil {
				t.Fatal(err)
			}
			if gotP != wantP || !reflect.DeepEqual(gotPre, wantPre) || !equalIDs(ids(gotF), ids(wantF)) {
				t.Fatalf("shards=%d query %d: filtered first cell differs", shards, qi)
			}
		}

		gotAll, err := full.AllEntriesFiltered(filter)
		if err != nil {
			t.Fatal(err)
		}
		wantAll, err := subset.AllEntries()
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(gotAll), sortedIDs(wantAll)) {
			t.Fatalf("shards=%d: filtered download differs (%d vs %d entries)",
				shards, len(gotAll), len(wantAll))
		}

		// Nil filter must be the identity.
		base, err := full.ApproxCandidatesRanked(w.mustApprox(t, w.queries[0]), 50)
		if err != nil {
			t.Fatal(err)
		}
		same, err := full.ApproxCandidatesRankedFiltered(w.mustApprox(t, w.queries[0]), 50, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, same) {
			t.Fatalf("shards=%d: nil filter changed the approx result", shards)
		}
	}
}

func (w *testWorld) mustApprox(t *testing.T, q []float32) mindex.ApproxQuery {
	t.Helper()
	_, aq := w.query(q)
	return aq
}
