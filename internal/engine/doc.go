// Package engine hosts the server-side index engine: a ShardedIndex that
// partitions the M-Index across independently locked shards and fans
// searches out across a bounded worker pool (internal/fanout), converting
// the serving hot path from lock-serialized to core-parallel.
//
// # Key invariant: routing and merge order
//
// An entry whose pivot permutation starts with pivot p is routed to shard
// p mod N (see DESIGN.md §Sharding). Every first-level Voronoi cell — the
// set of objects sharing a closest pivot — is therefore wholly contained
// in exactly one shard. Because all M-Index pruning and filtering bounds
// are evaluated per cell and per entry, each shard answers range queries
// exactly over its partition, and the global range result is the plain
// concatenation of the per-shard results: no cross-shard re-filtering is
// ever needed for correctness.
//
// Approximate candidates are collected per shard in promise order and
// merged by (promise, prefix, shard) via internal/merge — the one shared
// implementation of Algorithm 4's "next promising Voronoi cell" discipline
// across partitions, also used by the cluster coordinator
// (internal/cluster) to merge whole servers. ApproxCandidatesRanked keeps
// the per-candidate annotations so that outer aggregation layer can repeat
// the identical merge.
//
// With Shards <= 1 the engine is a transparent wrapper around a single
// mindex.Index and reproduces its results byte for byte.
package engine
