package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"simcloud/internal/mindex"
)

func mustEngine(t *testing.T, cfg mindex.Config) *ShardedIndex {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestBulkBuildShardEquivalence pins the bulk builder's byte-identity claim
// at the engine level, across 1 and 4 shards on both storage backends: an
// engine loaded by one InsertBulk call (each shard takes the bottom-up
// builder path) is byte-identical on disk — snapshot files and bucket files
// — to an engine fed the same entries in the same order through small
// chunks, which stay below the builder threshold and take the incremental
// path shard by shard.
func TestBulkBuildShardEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, storage := range []mindex.StorageKind{mindex.StorageMemory, mindex.StorageDisk} {
			name := "mem"
			if storage == mindex.StorageDisk {
				name = "disk"
			}
			t.Run(fmt.Sprintf("%s-shards=%d", name, shards), func(t *testing.T) {
				w := newWorld(t, 31, 3000, 10)
				cfgA, cfgB := testCfg(shards), testCfg(shards)
				cfgA.Storage, cfgB.Storage = storage, storage
				if storage == mindex.StorageDisk {
					cfgA.DiskPath = filepath.Join(t.TempDir(), "bulk")
					cfgB.DiskPath = filepath.Join(t.TempDir(), "incr")
				}
				engBulk := mustEngine(t, cfgA)
				engIncr := mustEngine(t, cfgB)

				// One big batch: every shard's group crosses the builder
				// threshold. Small chunks keep every shard incremental.
				if err := engBulk.InsertBulk(w.entries); err != nil {
					t.Fatal(err)
				}
				for off := 0; off < len(w.entries); off += 8 {
					end := min(off+8, len(w.entries))
					if err := engIncr.InsertBulk(w.entries[off:end]); err != nil {
						t.Fatal(err)
					}
				}

				if engBulk.Size() != engIncr.Size() {
					t.Fatalf("sizes differ: %d vs %d", engBulk.Size(), engIncr.Size())
				}
				if storage == mindex.StorageDisk {
					compareSnapshots(t, engBulk, engIncr, shards)
					compareBucketDirs(t, cfgA.DiskPath, cfgB.DiskPath)
				} else {
					// Memory indexes have no snapshot codec; the per-shard
					// tree statistics pin shape, counts and occupancy. The
					// Builds counter records which path ran — the one field
					// meant to differ between the two engines.
					sa, sb := engBulk.Stats(), engIncr.Stats()
					sa.Ingest.Builds, sb.Ingest.Builds = 0, 0
					if !reflect.DeepEqual(sa, sb) {
						t.Errorf("engine stats differ:\n%+v\nvs\n%+v", sa, sb)
					}
				}
				// And through the read path, for good measure.
				for _, q := range w.queries {
					qDists, aq := w.query(q)
					ra, err := engBulk.RangeByDists(qDists, 3)
					if err != nil {
						t.Fatal(err)
					}
					rb, err := engIncr.RangeByDists(qDists, 3)
					if err != nil {
						t.Fatal(err)
					}
					if !sameIDSet(ra, rb) {
						t.Fatal("range results differ")
					}
					aa, err := engBulk.ApproxCandidates(aq, 64)
					if err != nil {
						t.Fatal(err)
					}
					ab, err := engIncr.ApproxCandidates(aq, 64)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(aa, ab) {
						t.Fatal("approximate results differ")
					}
				}
			})
		}
	}
}

// compareSnapshots saves both engines and compares the snapshot files byte
// for byte (per shard for a sharded engine).
func compareSnapshots(t *testing.T, a, b *ShardedIndex, shards int) {
	t.Helper()
	pathA := filepath.Join(t.TempDir(), "a.snap")
	pathB := filepath.Join(t.TempDir(), "b.snap")
	if err := a.SaveSnapshot(pathA); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(pathB); err != nil {
		t.Fatal(err)
	}
	var files [][2]string
	if shards == 1 {
		files = append(files, [2]string{pathA, pathB})
	} else {
		for i := 0; i < shards; i++ {
			files = append(files, [2]string{shardSnapshotPath(pathA, i), shardSnapshotPath(pathB, i)})
		}
	}
	for i, pair := range files {
		rawA, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		rawB, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rawA, rawB) {
			t.Errorf("shard %d: snapshot files differ byte-for-byte", i)
		}
	}
}

// compareBucketDirs recursively compares two bucket directory trees.
func compareBucketDirs(t *testing.T, dirA, dirB string) {
	t.Helper()
	var relFiles func(dir string) []string
	relFiles = func(dir string) []string {
		var out []string
		filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				t.Fatal(err)
			}
			if !d.IsDir() {
				rel, _ := filepath.Rel(dir, p)
				out = append(out, rel)
			}
			return nil
		})
		return out
	}
	filesA, filesB := relFiles(dirA), relFiles(dirB)
	if !reflect.DeepEqual(filesA, filesB) {
		t.Fatalf("bucket file sets differ:\n%v\nvs\n%v", filesA, filesB)
	}
	for _, rel := range filesA {
		ca, err := os.ReadFile(filepath.Join(dirA, rel))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := os.ReadFile(filepath.Join(dirB, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ca, cb) {
			t.Errorf("bucket file %s differs", rel)
		}
	}
}

// sameIDSet compares two entry lists as ID sets (multi-shard range results
// concatenate in shard order, which is arrival-order independent but not
// stable across builds of different shard groupings).
func sameIDSet(a, b []mindex.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	ids := make(map[uint64]int, len(a))
	for _, e := range a {
		ids[e.ID]++
	}
	for _, e := range b {
		ids[e.ID]--
	}
	for _, n := range ids {
		if n != 0 {
			return false
		}
	}
	return true
}
