package engine

import (
	"slices"

	"simcloud/internal/merge"
	"simcloud/internal/mindex"
)

// Pivot-filtered read variants: each mirrors its unfiltered sibling with a
// mindex.PivotFilter pushed into every shard traversal. Shards partition
// entries by Perm[0], so handing the same filter to every shard restricts
// each to the allowed slice of the cells it owns; the merge discipline is
// untouched, which keeps the filtered stream byte-identical to what an
// engine holding only the allowed cells would return (the replicated
// coordinator's read contract — see mindex.PivotFilter). A nil filter
// delegates to the unfiltered implementation.

// RangeByDistsFiltered is RangeByDists restricted to the filter's
// first-level cells.
func (s *ShardedIndex) RangeByDistsFiltered(qDists []float64, r float64, filter mindex.PivotFilter) ([]mindex.Entry, error) {
	if filter == nil {
		return s.RangeByDists(qDists, r)
	}
	if len(s.shards) == 1 {
		if s.closed.Load() {
			return nil, errClosed
		}
		return s.shards[0].RangeByDistsFiltered(qDists, r, filter)
	}
	perp := s.entriesScratch.get(len(s.shards))
	defer s.entriesScratch.put(perp)
	per := *perp
	err := s.fanOutRead(func(i int) error {
		out, err := s.shards[i].RangeByDistsFiltered(qDists, r, filter)
		per[i] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	return slices.Concat(per...), nil
}

// ApproxCandidatesRankedFiltered is ApproxCandidatesRanked restricted to
// the filter's first-level cells.
func (s *ShardedIndex) ApproxCandidatesRankedFiltered(q mindex.ApproxQuery, candSize int, filter mindex.PivotFilter) ([]mindex.RankedCandidate, error) {
	if filter == nil {
		return s.ApproxCandidatesRanked(q, candSize)
	}
	if len(s.shards) == 1 {
		if s.closed.Load() {
			return nil, errClosed
		}
		return s.shards[0].ApproxCandidatesRankedFiltered(q, candSize, filter)
	}
	perp := s.rankedScratch.get(len(s.shards))
	defer s.rankedScratch.put(perp)
	per := *perp
	err := s.fanOutRead(func(i int) error {
		out, err := s.shards[i].ApproxCandidatesRankedFiltered(q, candSize, filter)
		per[i] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	merged := merge.Ranked(per)
	if len(merged) > candSize {
		merged = merged[:candSize]
	}
	return merged, nil
}

// FirstCellRankedFiltered is FirstCellRanked restricted to the filter's
// first-level cells.
func (s *ShardedIndex) FirstCellRankedFiltered(q mindex.ApproxQuery, filter mindex.PivotFilter) ([]mindex.Entry, float64, []int32, error) {
	if filter == nil {
		return s.FirstCellRanked(q)
	}
	if len(s.shards) == 1 {
		if s.closed.Load() {
			return nil, 0, nil, errClosed
		}
		return s.shards[0].FirstCellRankedFiltered(q, filter)
	}
	perp := s.cellScratch.get(len(s.shards))
	defer s.cellScratch.put(perp)
	per := *perp
	err := s.fanOutRead(func(i int) error {
		entries, promise, prefix, err := s.shards[i].FirstCellRankedFiltered(q, filter)
		per[i] = merge.Cell{Entries: entries, Promise: promise, Prefix: prefix}
		return err
	})
	if err != nil {
		return nil, 0, nil, err
	}
	best := merge.BestCell(per)
	if best < 0 {
		return nil, 0, nil, nil
	}
	return per[best].Entries, per[best].Promise, per[best].Prefix, nil
}

// AllEntriesFiltered is AllEntries restricted to the filter's first-level
// cells, in the same shard-by-shard order.
func (s *ShardedIndex) AllEntriesFiltered(filter mindex.PivotFilter) ([]mindex.Entry, error) {
	if filter == nil {
		return s.AllEntries()
	}
	if s.closed.Load() {
		return nil, errClosed
	}
	per := make([][]mindex.Entry, len(s.shards))
	for i, sh := range s.shards {
		out, err := sh.AllEntriesFiltered(filter)
		if err != nil {
			return nil, err
		}
		per[i] = out
	}
	return slices.Concat(per...), nil
}
