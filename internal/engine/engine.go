package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"simcloud/internal/fanout"
	"simcloud/internal/merge"
	"simcloud/internal/mindex"
)

// ShardedIndex partitions entries across N independent mindex.Index shards
// keyed by the first element of the pivot permutation. Each shard carries
// its own lock, so inserts and searches touching different shards proceed
// in parallel. All operations preserve the single-index semantics.
type ShardedIndex struct {
	cfg    mindex.Config
	shards []*mindex.Index
	pool   *fanout.Pool
	// readPool fans searches out separately from the mutation pool, so a
	// query never queues behind a bulk insert or a shard compaction
	// occupying the write workers. Shard reads themselves are lock-free
	// (mindex publishes RCU snapshots), so read tasks never block on shard
	// state either — the pools only bound goroutine counts.
	readPool *fanout.Pool
	closed   atomic.Bool

	// Fan-out scratch pools: the per-shard result slices a query fans out
	// into are recycled across queries (one pool per result shape), so the
	// steady-state multi-shard hot path allocates no fan-out scaffolding.
	// Pooled slices are cleared before reuse — a parked slice never pins a
	// previous query's results.
	entriesScratch scratchPool[[]mindex.Entry]
	rankedScratch  scratchPool[[]mindex.RankedCandidate]
	cellScratch    scratchPool[merge.Cell]
}

// scratchPool recycles fixed-length fan-out slices (one element per shard).
type scratchPool[T any] struct {
	p sync.Pool
}

func (sp *scratchPool[T]) get(n int) *[]T {
	if v := sp.p.Get(); v != nil {
		return v.(*[]T)
	}
	s := make([]T, n)
	return &s
}

func (sp *scratchPool[T]) put(s *[]T) {
	clear(*s)
	sp.p.Put(s)
}

// New creates an empty sharded index. cfg.Shards selects the partition
// count (0 and 1 both mean a single shard, the exact pre-sharding
// behavior). Disk-backed shards each own a shard-NNN subdirectory of
// cfg.DiskPath; a single shard uses cfg.DiskPath directly, staying
// compatible with pre-sharding bucket directories and snapshots.
func New(cfg mindex.Config) (*ShardedIndex, error) {
	// Per-shard configs are rewritten to Shards=1 before mindex validates
	// them, so the engine-level shard count must be checked here.
	if cfg.Shards < 0 || cfg.Shards > mindex.MaxShards {
		return nil, fmt.Errorf("engine: Shards must be in 0..%d, got %d", mindex.MaxShards, cfg.Shards)
	}
	n := max(1, cfg.Shards)
	shards := make([]*mindex.Index, n)
	for i := range shards {
		idx, err := mindex.New(shardConfig(cfg, i, n))
		if err != nil {
			for _, prev := range shards[:i] {
				prev.Close()
			}
			return nil, err
		}
		shards[i] = idx
	}
	return newSharded(cfg, shards), nil
}

// Wrap adapts an existing single index — typically one restored from a
// snapshot — into a 1-shard engine.
func Wrap(idx *mindex.Index) *ShardedIndex {
	return newSharded(idx.Config(), []*mindex.Index{idx})
}

func newSharded(cfg mindex.Config, shards []*mindex.Index) *ShardedIndex {
	s := &ShardedIndex{cfg: cfg, shards: shards}
	if len(shards) > 1 {
		workers := min(len(shards), max(1, runtime.GOMAXPROCS(0)))
		s.pool = fanout.New(workers)
		s.readPool = fanout.New(workers)
	}
	return s
}

// shardConfig derives the per-shard index configuration. Shard sub-indexes
// split their root eagerly: every shard leaf then lies at prefix length
// >= 1, where its prefix — and therefore its promise value — is identical
// to the same cell's in an unsharded tree whose root has split, making
// per-shard promises directly comparable in the cross-shard merge.
// (Without this, a shard whose root bucket has not overflowed yet would
// advertise all its entries at promise 0 and crowd out genuinely promising
// cells of other shards.) The exact-match guarantee therefore holds once
// the collection exceeds BucketCapacity; below that, an unsharded index
// still serves its unsplit root bucket in insertion order while shards
// already serve promise-ordered cells, so candidate lists may differ on
// tiny collections (result correctness is unaffected — range queries are
// exact either way).
func shardConfig(cfg mindex.Config, i, n int) mindex.Config {
	out := cfg
	if n == 1 {
		return out
	}
	out.Shards = 1
	out.EagerRootSplit = true
	if cfg.Storage == mindex.StorageDisk {
		out.DiskPath = filepath.Join(cfg.DiskPath, fmt.Sprintf("shard-%03d", i))
		// The bucket-cache budget is a whole-engine figure: resolve the
		// default here and split it across the shards' stores, so an
		// operator sizing DiskCacheBytes against a memory limit gets that
		// total, not budget × shards. Negative (disabled) passes through.
		budget := cfg.DiskCacheBytes
		if budget == 0 {
			budget = mindex.DefaultDiskCacheBytes
		}
		if budget > 0 {
			out.DiskCacheBytes = max(budget/n, 1)
		}
	}
	return out
}

// Config returns the engine-level configuration (Shards as requested).
func (s *ShardedIndex) Config() mindex.Config { return s.cfg }

// NumShards returns the partition count.
func (s *ShardedIndex) NumShards() int { return len(s.shards) }

// Shard exposes one partition for white-box inspection by tools and tests.
func (s *ShardedIndex) Shard(i int) *mindex.Index { return s.shards[i] }

// Size returns the total number of indexed entries across all shards.
func (s *ShardedIndex) Size() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.Size()
	}
	return total
}

// Close releases every shard and stops the worker pool.
func (s *ShardedIndex) Close() error {
	s.closed.Store(true)
	if s.pool != nil {
		s.pool.Close()
	}
	if s.readPool != nil {
		s.readPool.Close()
	}
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var errClosed = errors.New("engine: sharded index is closed")

// route maps an entry permutation to its shard: the closest pivot (first
// permutation element) modulo the shard count, preserving first-level
// Voronoi-cell locality. The first element is validated here — entries
// arrive straight off the wire, and a negative element must become an
// error response, not a negative slice index.
func (s *ShardedIndex) route(perm []int32) (int, error) {
	if len(perm) == 0 {
		return 0, errors.New("engine: entry permutation is empty")
	}
	if perm[0] < 0 || int(perm[0]) >= s.cfg.NumPivots {
		return 0, fmt.Errorf("engine: permutation element %d out of range [0,%d)", perm[0], s.cfg.NumPivots)
	}
	return int(perm[0]) % len(s.shards), nil
}

// fanOut runs fn once per shard through the bounded mutation pool (inline
// for a single shard).
func (s *ShardedIndex) fanOut(fn func(i int) error) error {
	return s.fanOutOn(s.pool, fn)
}

// fanOutRead runs fn once per shard through the dedicated read pool, keeping
// search fan-outs from queueing behind mutation tasks.
func (s *ShardedIndex) fanOutRead(fn func(i int) error) error {
	return s.fanOutOn(s.readPool, fn)
}

func (s *ShardedIndex) fanOutOn(pool *fanout.Pool, fn func(i int) error) error {
	if s.closed.Load() {
		return errClosed
	}
	if pool == nil {
		return fn(0)
	}
	err := pool.Run(len(s.shards), fn)
	if errors.Is(err, fanout.ErrClosed) {
		return errClosed
	}
	return err
}

// Insert routes the entry to its shard. Entries for different shards can be
// inserted concurrently without contending on a lock.
//
// Entry IDs must be unique across the whole engine, but the duplicate
// check (mindex.ErrDuplicateID) runs only inside the routed shard: a
// duplicate whose permutation routes to a different shard — the object
// moved in pivot space since its first insert — is not detected and would
// leave two live records. Use Update whenever an ID may already be
// indexed; it retires old copies on every shard.
func (s *ShardedIndex) Insert(e mindex.Entry) error {
	if s.closed.Load() {
		return errClosed
	}
	i, err := s.route(e.Perm)
	if err != nil {
		return err
	}
	return s.shards[i].Insert(e)
}

// InsertBulk groups the batch by shard (preserving per-shard arrival order)
// and inserts the groups in parallel through the worker pool.
func (s *ShardedIndex) InsertBulk(entries []mindex.Entry) error {
	if len(s.shards) == 1 {
		if s.closed.Load() {
			return errClosed
		}
		return s.shards[0].InsertBulk(entries)
	}
	groups := make([][]mindex.Entry, len(s.shards))
	for _, e := range entries {
		i, err := s.route(e.Perm)
		if err != nil {
			return err
		}
		groups[i] = append(groups[i], e)
	}
	return s.fanOut(func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		return s.shards[i].InsertBulk(groups[i])
	})
}

// Delete tombstones the referenced entries. Each reference carries the
// entry's ID plus its permutation prefix, whose first element routes the
// delete to the shard that stored the entry — exactly the pivot-space
// metadata an insert reveals, and nothing more. References to unknown (or
// already deleted) IDs are skipped; the count of entries actually deleted
// is returned. When Config.AutoCompactFraction is set, shards whose dead
// fraction crosses it are compacted in the same pass.
func (s *ShardedIndex) Delete(refs []mindex.Entry) (int, error) {
	if s.closed.Load() {
		return 0, errClosed
	}
	groups := make([][]uint64, len(s.shards))
	for _, ref := range refs {
		i, err := s.route(ref.Perm)
		if err != nil {
			return 0, err
		}
		groups[i] = append(groups[i], ref.ID)
	}
	var deleted atomic.Int64
	err := s.fanOut(func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		n, err := s.shards[i].Delete(groups[i])
		if err != nil {
			return err
		}
		deleted.Add(int64(n))
		return s.maybeCompact(i)
	})
	return int(deleted.Load()), err
}

// DeleteIDs tombstones entries by bare ID, fanning the whole list out to
// every shard (IDs unknown to a shard are ignored). Use Delete when the
// permutations are at hand — it touches only the owning shards.
func (s *ShardedIndex) DeleteIDs(ids []uint64) (int, error) {
	if s.closed.Load() {
		return 0, errClosed
	}
	var deleted atomic.Int64
	err := s.fanOut(func(i int) error {
		n, err := s.shards[i].Delete(ids)
		if err != nil {
			return err
		}
		deleted.Add(int64(n))
		return s.maybeCompact(i)
	})
	return int(deleted.Load()), err
}

// Update replaces the entry carrying e.ID with e: the replacement is
// upserted into its routed shard atomically (mindex.Index.Update holds
// the shard lock across delete + insert, so within one shard no search
// observes the entry absent and concurrent Updates serialize), and the
// old record is then retired from every other shard — the object may have
// moved in pivot space, landing the fresh entry elsewhere. An unknown ID
// makes Update a plain insert. The replacement is fully validated before
// anything is touched, and any failure leaves the previous record intact
// (at worst old and new are briefly visible together while a reported
// cleanup error is retried), so Update never destroys the entry it was
// meant to replace. Concurrent Updates of the same ID whose replacements
// route to different shards are not serialized against each other —
// callers needing per-ID linearizability across shard moves must
// serialize their own writers.
func (s *ShardedIndex) Update(e mindex.Entry) error {
	if s.closed.Load() {
		return errClosed
	}
	i, err := s.route(e.Perm)
	if err != nil {
		return err
	}
	if err := s.shards[i].CheckEntry(e); err != nil {
		return err
	}
	// Upsert the replacement first, then retire old copies on the other
	// shards. A failure in the cleanup pass leaves the old copy briefly
	// visible alongside the new one (and is reported) — transient
	// duplication, never loss of the entry.
	if err := s.shards[i].Update(e); err != nil {
		return err
	}
	return s.fanOut(func(j int) error {
		if j == i {
			return nil
		}
		if _, err := s.shards[j].Delete([]uint64{e.ID}); err != nil {
			return err
		}
		return s.maybeCompact(j)
	})
}

// Compact compacts every shard: tombstoned entries are physically dropped
// and cells that deletion left underfull are merged back into their
// parents, shard by shard behind each shard's own lock. Afterwards each
// shard is byte-identical to a fresh shard built from its surviving
// entries (see mindex.Index.Compact).
func (s *ShardedIndex) Compact() error {
	return s.fanOut(func(i int) error { return s.shards[i].Compact() })
}

// maybeCompact applies the auto-compaction policy to one shard after a
// delete pass: compact once tombstones reach AutoCompactFraction of the
// shard's stored entries.
func (s *ShardedIndex) maybeCompact(i int) error {
	f := s.cfg.AutoCompactFraction
	if f <= 0 {
		return nil
	}
	sh := s.shards[i]
	dead := sh.Dead()
	if dead == 0 {
		return nil
	}
	if float64(dead) >= f*float64(sh.Size()+dead) {
		return sh.Compact()
	}
	return nil
}

// Dead returns the total number of tombstoned entries awaiting compaction
// across all shards.
func (s *ShardedIndex) Dead() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.Dead()
	}
	return total
}

// RangeByDists fans the precise range query out to every shard and
// concatenates the per-shard candidate sets (exact: each first-level cell
// lives in exactly one shard, and all pruning bounds are per-cell).
func (s *ShardedIndex) RangeByDists(qDists []float64, r float64) ([]mindex.Entry, error) {
	if len(s.shards) == 1 {
		if s.closed.Load() {
			return nil, errClosed
		}
		return s.shards[0].RangeByDists(qDists, r)
	}
	perp := s.entriesScratch.get(len(s.shards))
	defer s.entriesScratch.put(perp)
	per := *perp
	err := s.fanOutRead(func(i int) error {
		out, err := s.shards[i].RangeByDists(qDists, r)
		per[i] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	return slices.Concat(per...), nil
}

// ApproxCandidates fans the approximate query out to every shard, each
// collecting up to candSize promise-ranked candidates, and merges the
// streams by (promise, prefix, shard) into one globally ranked list trimmed
// to candSize — the cross-shard equivalent of Algorithm 4's cell ordering.
func (s *ShardedIndex) ApproxCandidates(q mindex.ApproxQuery, candSize int) ([]mindex.Entry, error) {
	if len(s.shards) == 1 {
		// Hot path: serve the shard's entries directly instead of
		// materializing ranking annotations just to strip them again.
		if s.closed.Load() {
			return nil, errClosed
		}
		return s.shards[0].ApproxCandidates(q, candSize)
	}
	rcs, err := s.ApproxCandidatesRanked(q, candSize)
	if err != nil {
		return nil, err
	}
	return merge.Entries(rcs, candSize), nil
}

// ApproxCandidatesRanked is ApproxCandidates with the source-cell promise
// and prefix kept on every candidate: per-shard ranked streams are merged
// by internal/merge and trimmed to candSize. The annotations let a further
// aggregation layer — the cluster coordinator fronting several servers —
// repeat exactly this merge across nodes.
func (s *ShardedIndex) ApproxCandidatesRanked(q mindex.ApproxQuery, candSize int) ([]mindex.RankedCandidate, error) {
	if len(s.shards) == 1 {
		if s.closed.Load() {
			return nil, errClosed
		}
		return s.shards[0].ApproxCandidatesRanked(q, candSize)
	}
	perp := s.rankedScratch.get(len(s.shards))
	defer s.rankedScratch.put(perp)
	per := *perp
	err := s.fanOutRead(func(i int) error {
		out, err := s.shards[i].ApproxCandidatesRanked(q, candSize)
		per[i] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	merged := merge.Ranked(per)
	if len(merged) > candSize {
		merged = merged[:candSize]
	}
	return merged, nil
}

// FirstCellCandidates returns the entries of the globally most promising
// non-empty Voronoi cell: each shard nominates its best cell, and the
// winner is chosen by (promise, prefix, shard).
func (s *ShardedIndex) FirstCellCandidates(q mindex.ApproxQuery) ([]mindex.Entry, error) {
	entries, _, _, err := s.FirstCellRanked(q)
	return entries, err
}

// FirstCellRanked is FirstCellCandidates with the winning cell's promise
// and prefix, so a cluster coordinator can pick the globally best cell
// among per-node winners with merge.BestCell — the same rule applied here
// across shards. An empty engine yields nil entries.
func (s *ShardedIndex) FirstCellRanked(q mindex.ApproxQuery) ([]mindex.Entry, float64, []int32, error) {
	if len(s.shards) == 1 {
		if s.closed.Load() {
			return nil, 0, nil, errClosed
		}
		return s.shards[0].FirstCellRanked(q)
	}
	perp := s.cellScratch.get(len(s.shards))
	defer s.cellScratch.put(perp)
	per := *perp
	err := s.fanOutRead(func(i int) error {
		entries, promise, prefix, err := s.shards[i].FirstCellRanked(q)
		per[i] = merge.Cell{Entries: entries, Promise: promise, Prefix: prefix}
		return err
	})
	if err != nil {
		return nil, 0, nil, err
	}
	best := merge.BestCell(per)
	if best < 0 {
		return nil, 0, nil, nil
	}
	return per[best].Entries, per[best].Promise, per[best].Prefix, nil
}

// AllEntries returns every stored entry, shard by shard (the trivial
// download-all baseline).
func (s *ShardedIndex) AllEntries() ([]mindex.Entry, error) {
	if s.closed.Load() {
		return nil, errClosed
	}
	per := make([][]mindex.Entry, len(s.shards))
	for i, sh := range s.shards {
		out, err := sh.AllEntries()
		if err != nil {
			return nil, err
		}
		per[i] = out
	}
	return slices.Concat(per...), nil
}

// TreeStats aggregates the per-shard cell-tree statistics: counts sum,
// depth and bucket maxima take the max over shards.
func (s *ShardedIndex) TreeStats() mindex.Stats {
	return s.Stats().Total
}

// Stats reports the engine's live/dead entry counts and tree shape, both
// aggregated and per shard (Shards[i] describes shard i), plus the
// read-through bucket-cache counters summed over all disk-backed shards
// (zero for memory storage, which needs no cache).
type Stats struct {
	Total       mindex.Stats
	Shards      []mindex.Stats
	CacheHits   uint64
	CacheMisses uint64
	// Ingest sums the per-shard ingest counters (entries accepted, builder
	// batches, encoded bytes) since the engine opened.
	Ingest mindex.IngestStats
}

// Stats collects per-shard tree statistics plus their aggregate — the
// operational view of a mutable deployment (live entries, tombstones
// awaiting compaction, bucket occupancy per shard). Each shard is walked
// exactly once and Total is derived from the same snapshot, so Total
// always equals the sum of Shards even under concurrent mutation.
func (s *ShardedIndex) Stats() Stats {
	out := Stats{Shards: make([]mindex.Stats, len(s.shards))}
	for i, sh := range s.shards {
		st := sh.TreeStats()
		out.Shards[i] = st
		out.Total.Entries += st.Entries
		out.Total.Dead += st.Dead
		out.Total.Leaves += st.Leaves
		out.Total.InnerNodes += st.InnerNodes
		out.Total.TotalBucket += st.TotalBucket
		out.Total.MaxDepth = max(out.Total.MaxDepth, st.MaxDepth)
		out.Total.MaxBucket = max(out.Total.MaxBucket, st.MaxBucket)
		if hits, misses, ok := sh.CacheStats(); ok {
			out.CacheHits += hits
			out.CacheMisses += misses
		}
		ing := sh.IngestStats()
		out.Ingest.Entries += ing.Entries
		out.Ingest.Builds += ing.Builds
		out.Ingest.Bytes += ing.Bytes
	}
	return out
}

// SaveSnapshot persists the engine to disk-backed snapshot files: a single
// shard writes the pre-sharding format at path (fully compatible with
// mindex.LoadSnapshot); N > 1 shards write one snapshot per shard at
// path.shard-NNN.
func (s *ShardedIndex) SaveSnapshot(path string) error {
	if len(s.shards) == 1 {
		return s.shards[0].SaveSnapshot(path)
	}
	for i, sh := range s.shards {
		if err := sh.SaveSnapshot(shardSnapshotPath(path, i)); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot restores an engine saved by SaveSnapshot. cfg must match the
// saved configuration, including the shard count: a snapshot saved with a
// different shard count is rejected loudly (loading a subset of shard files
// would silently drop data; loading on top of stale files would mix index
// generations).
func LoadSnapshot(cfg mindex.Config, path string) (*ShardedIndex, error) {
	n := max(1, cfg.Shards)
	if err := checkSnapshotShape(n, path); err != nil {
		return nil, err
	}
	if n == 1 {
		idx, err := mindex.LoadSnapshot(cfg, path)
		if err != nil {
			return nil, err
		}
		eng := Wrap(idx)
		eng.cfg = cfg
		return eng, nil
	}
	shards := make([]*mindex.Index, n)
	for i := range shards {
		idx, err := mindex.LoadSnapshot(shardConfig(cfg, i, n), shardSnapshotPath(path, i))
		if err != nil {
			for _, prev := range shards[:i] {
				prev.Close()
			}
			return nil, err
		}
		shards[i] = idx
	}
	return newSharded(cfg, shards), nil
}

// checkSnapshotShape rejects a load whose shard count disagrees with the
// files on disk: a bare base file alongside an expected sharded layout (or
// vice versa), or more shard files than cfg.Shards.
func checkSnapshotShape(n int, path string) error {
	if n == 1 {
		if _, err := os.Stat(shardSnapshotPath(path, 0)); err == nil {
			return fmt.Errorf("engine: snapshot %s was saved sharded (%s exists); set Config.Shards to the saved count",
				path, shardSnapshotPath(path, 0))
		}
		return nil
	}
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("engine: snapshot %s was saved with a single shard; set Config.Shards to 1 or remove the stale file", path)
	}
	if _, err := os.Stat(shardSnapshotPath(path, n)); err == nil {
		return fmt.Errorf("engine: snapshot %s has more shard files than Config.Shards=%d (%s exists)",
			path, n, shardSnapshotPath(path, n))
	}
	return nil
}

// SnapshotExists reports whether a snapshot saved with cfg's shard count is
// present at path. It errors when files of a different shard layout sit
// there instead — restarting with a changed shard count must fail loudly,
// not silently start an empty index over the old data.
func SnapshotExists(cfg mindex.Config, path string) (bool, error) {
	n := max(1, cfg.Shards)
	if err := checkSnapshotShape(n, path); err != nil {
		return false, err
	}
	probe := path
	if n > 1 {
		probe = shardSnapshotPath(path, 0)
	}
	_, err := os.Stat(probe)
	return err == nil, nil
}

func shardSnapshotPath(path string, i int) string {
	return fmt.Sprintf("%s.shard-%03d", path, i)
}
