package secret

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math/rand/v2"

	"simcloud/internal/transform"
)

// The distribution-hiding distance transformation (the paper's future-work
// extension, implemented here) is part of the secret key: every authorized
// client must apply the same keyed monotone map to pivot distances before
// they reach the server, so the transform is fitted once by the data owner
// and travels inside the marshaled key.

// Transform returns the key's distance transformation, or nil when the key
// stores raw pivot distances.
func (k *Key) Transform() *transform.Monotone { return k.distTransform }

// SetTransform attaches a pre-fitted transformation to the key.
func (k *Key) SetTransform(t *transform.Monotone) { k.distTransform = t }

// FitTransform fits an equalizing distance transformation from a sample of
// object–pivot distances and attaches it to the key. The jitter randomness
// is derived deterministically from the key's cipher material, so re-fitting
// with the same key and sample reproduces the same transform.
func (k *Key) FitTransform(sample []float64, knots int) error {
	if len(k.aesKey) == 0 {
		return errors.New("secret: key has no cipher material")
	}
	h := sha256.Sum256(append(append([]byte("simcloud-transform"), k.aesKey...), k.macKey...))
	rng := rand.New(rand.NewPCG(
		binary.LittleEndian.Uint64(h[0:8]),
		binary.LittleEndian.Uint64(h[8:16]),
	))
	t, err := transform.FitEqualizing(rng, sample, knots)
	if err != nil {
		return err
	}
	k.distTransform = t
	return nil
}

// TransformDists applies the key's transformation to a distance vector,
// returning the input unchanged when no transform is attached.
func (k *Key) TransformDists(dists []float64) []float64 {
	if k.distTransform == nil {
		return dists
	}
	return k.distTransform.ApplyAll(dists)
}

// TransformRadius maps a query radius into transformed space (identity when
// no transform is attached).
func (k *Key) TransformRadius(r float64) float64 {
	if k.distTransform == nil {
		return r
	}
	return k.distTransform.RadiusBound(r)
}
