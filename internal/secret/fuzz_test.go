package secret

import (
	"bytes"
	"testing"

	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

func fuzzKey(f *testing.F) *Key {
	f.Helper()
	pv := pivot.NewSet(metric.L1{}, []metric.Vector{{1, 2}, {3, 4}})
	k, err := Generate(pv, ModeCTRHMAC)
	if err != nil {
		f.Fatal(err)
	}
	return k
}

// FuzzUnmarshalKey: hostile key blobs must never panic and never yield a
// key that disagrees with its own re-marshaling.
func FuzzUnmarshalKey(f *testing.F) {
	k := fuzzKey(f)
	blob, err := k.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add(blob[:len(blob)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := got.Marshal()
		if err != nil {
			t.Fatalf("unmarshaled key fails to marshal: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("key marshal round trip mismatch")
		}
	})
}

// FuzzOpen: hostile ciphertexts must never panic and never authenticate.
func FuzzOpen(f *testing.F) {
	k := fuzzKey(f)
	ct, err := k.Seal([]byte("seed plaintext"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ct)
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := k.Open(data)
		if err != nil {
			return
		}
		// The only inputs that may authenticate are genuine ciphertexts; the
		// fuzzer mutating our seed must practically never land here unless
		// the bytes are the seed itself.
		if !bytes.Equal(data, ct) && len(pt) == len("seed plaintext") && bytes.Equal(pt, []byte("seed plaintext")) {
			t.Fatal("forged ciphertext authenticated")
		}
	})
}

// FuzzDecodeObject: malformed object encodings must never panic.
func FuzzDecodeObject(f *testing.F) {
	f.Add(EncodeObject(metric.Object{ID: 1, Vec: metric.Vector{1, 2, 3}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := DecodeObject(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeObject(o), data) {
			t.Fatal("object codec round trip mismatch")
		}
	})
}
