package secret

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

func testPivots(t *testing.T, n, dim int) *pivot.Set {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, uint64(n)))
	vecs := make([]metric.Vector, n)
	for i := range vecs {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = v
	}
	return pivot.NewSet(metric.L1{}, vecs)
}

func testKey(t *testing.T, mode Mode) *Key {
	t.Helper()
	k, err := Generate(testPivots(t, 8, 4), mode)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestObjectCodecRoundTrip(t *testing.T) {
	o := metric.Object{ID: 42, Vec: metric.Vector{1.5, -2.25, 0, 3e7}}
	got, err := DecodeObject(EncodeObject(o))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != o.ID || !got.Vec.Equal(o.Vec) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestQuickObjectCodec(t *testing.T) {
	f := func(id uint64, raw []float32) bool {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		o := metric.Object{ID: id, Vec: raw}
		got, err := DecodeObject(EncodeObject(o))
		if err != nil {
			return false
		}
		if got.ID != id || len(got.Vec) != len(raw) {
			return false
		}
		return bytes.Equal(EncodeObject(got), EncodeObject(o))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeObjectRejectsMalformed(t *testing.T) {
	for _, buf := range [][]byte{
		nil,
		{1, 2, 3},
		append(EncodeObject(metric.Object{ID: 1, Vec: metric.Vector{1}}), 0), // trailing
		EncodeObject(metric.Object{ID: 1, Vec: metric.Vector{1, 2}})[:13],    // truncated
	} {
		if _, err := DecodeObject(buf); err == nil {
			t.Fatalf("malformed buffer %v accepted", buf)
		}
	}
}

func TestSealOpenBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeCTRHMAC, ModeGCM} {
		t.Run(mode.String(), func(t *testing.T) {
			k := testKey(t, mode)
			for _, pt := range [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 1000)} {
				ct, err := k.Seal(pt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := k.Open(ct)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, pt) {
					t.Fatalf("round trip mismatch for %d bytes", len(pt))
				}
			}
		})
	}
}

func TestCiphertextsAreRandomized(t *testing.T) {
	k := testKey(t, ModeCTRHMAC)
	pt := []byte("same plaintext twice")
	a, _ := k.Seal(pt)
	b, _ := k.Seal(pt)
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions of the same plaintext are identical (IV reuse)")
	}
}

func TestTamperingDetected(t *testing.T) {
	for _, mode := range []Mode{ModeCTRHMAC, ModeGCM} {
		t.Run(mode.String(), func(t *testing.T) {
			k := testKey(t, mode)
			ct, err := k.Seal([]byte("candidate object payload"))
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range []int{1, len(ct) / 2, len(ct) - 1} {
				mangled := bytes.Clone(ct)
				mangled[i] ^= 0x01
				if _, err := k.Open(mangled); err == nil {
					t.Fatalf("tampered byte %d accepted", i)
				}
			}
			// Truncation must fail too.
			if _, err := k.Open(ct[:len(ct)-1]); err == nil {
				t.Fatal("truncated ciphertext accepted")
			}
			if _, err := k.Open(nil); err == nil {
				t.Fatal("empty ciphertext accepted")
			}
		})
	}
}

func TestWrongKeyFails(t *testing.T) {
	k1 := testKey(t, ModeCTRHMAC)
	k2 := testKey(t, ModeCTRHMAC)
	ct, _ := k1.Seal([]byte("secret"))
	if _, err := k2.Open(ct); err == nil {
		t.Fatal("unauthorized key decrypted the ciphertext")
	}
}

func TestModeMismatchRejected(t *testing.T) {
	ctr := testKey(t, ModeCTRHMAC)
	gcm := testKey(t, ModeGCM)
	ct, _ := ctr.Seal([]byte("x"))
	if _, err := gcm.Open(ct); err == nil {
		t.Fatal("GCM key opened CTR ciphertext")
	}
}

func TestEncryptDecryptObject(t *testing.T) {
	for _, mode := range []Mode{ModeCTRHMAC, ModeGCM} {
		k := testKey(t, mode)
		o := metric.Object{ID: 7, Vec: metric.Vector{3.5, -1, 2}}
		ct, err := k.EncryptObject(o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.DecryptObject(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != 7 || !got.Vec.Equal(o.Vec) {
			t.Fatalf("object round trip mismatch: %+v", got)
		}
		// The ciphertext must not contain the plaintext vector encoding.
		if bytes.Contains(ct, EncodeObject(o)[8:]) {
			t.Fatal("ciphertext leaks plaintext")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(nil, ModeCTRHMAC); err == nil {
		t.Fatal("nil pivots accepted")
	}
	if _, err := Generate(pivot.NewSet(metric.L1{}, nil), ModeCTRHMAC); err == nil {
		t.Fatal("empty pivots accepted")
	}
	if _, err := Generate(testPivots(t, 2, 2), Mode(99)); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestKeyMarshalRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeCTRHMAC, ModeGCM} {
		t.Run(mode.String(), func(t *testing.T) {
			k, err := Generate(testPivots(t, 5, 3), mode)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := k.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			got, err := Unmarshal(blob)
			if err != nil {
				t.Fatal(err)
			}
			if got.Mode() != mode {
				t.Fatalf("mode = %v", got.Mode())
			}
			if got.Pivots().N() != 5 || got.Pivots().Dist.Name() != "L1" {
				t.Fatalf("pivots = %d under %s", got.Pivots().N(), got.Pivots().Dist.Name())
			}
			for i := range k.pivots.Pivots {
				if !got.pivots.Pivots[i].Equal(k.pivots.Pivots[i]) {
					t.Fatalf("pivot %d mismatch", i)
				}
			}
			// The unmarshaled key must decrypt what the original sealed.
			ct, _ := k.Seal([]byte("cross-key payload"))
			pt, err := got.Open(ct)
			if err != nil || string(pt) != "cross-key payload" {
				t.Fatalf("unmarshaled key cannot open: %v", err)
			}
		})
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	k := testKey(t, ModeCTRHMAC)
	blob, _ := k.Marshal()
	cases := [][]byte{
		nil,
		[]byte("short"),
		blob[:len(blob)-3],                      // truncated pivots
		append(bytes.Clone(blob), 1, 2, 3),      // trailing bytes
		append([]byte("WRONGMAG"), blob[8:]...), // bad magic
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d: garbage key accepted", i)
		}
	}
}

func TestUnmarshalRejectsBadMode(t *testing.T) {
	k := testKey(t, ModeCTRHMAC)
	blob, _ := k.Marshal()
	blob[8] = 99 // mode byte follows the magic
	if _, err := Unmarshal(blob); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestQuickSealOpenRoundTrip(t *testing.T) {
	k := testKey(t, ModeGCM)
	f := func(pt []byte) bool {
		if len(pt) > 4096 {
			pt = pt[:4096]
		}
		ct, err := k.Seal(pt)
		if err != nil {
			return false
		}
		got, err := k.Open(ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
