// Package secret implements the encryption layer of the Encrypted M-Index.
//
// The secret key of an authorized client consists of (1) the pivot set and
// (2) the key of the symmetric cipher used to encrypt metric-space objects —
// exactly the two-part secret of Section 4.2 of the paper. The data owner
// generates the key, uses it to build the outsourced index, and shares it
// with authorized clients; the untrusted server only ever stores ciphertexts
// accompanied by pivot permutations (or pivot-distance vectors) and cannot
// evaluate the distance function because the pivots are not known to it.
//
// Two cipher modes are provided:
//
//   - ModeCTRHMAC: AES-128-CTR with an encrypt-then-MAC HMAC-SHA256 tag.
//     This matches the paper's "standard symmetric cipher AES with 128 bit
//     key" while adding integrity, which any practical outsourced store
//     needs (a malicious server could otherwise tamper with candidates).
//   - ModeGCM: AES-128-GCM, the modern AEAD equivalent, used by the cipher
//     ablation benchmark.
package secret

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"simcloud/internal/metric"
	"simcloud/internal/pivot"
	"simcloud/internal/transform"
)

// Mode selects the symmetric cipher construction.
type Mode uint8

// Cipher modes.
const (
	ModeCTRHMAC Mode = 1 // AES-128-CTR + HMAC-SHA256 (encrypt-then-MAC)
	ModeGCM     Mode = 2 // AES-128-GCM
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeCTRHMAC:
		return "aes-ctr-hmac"
	case ModeGCM:
		return "aes-gcm"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

const (
	aesKeyLen  = 16 // AES-128, as in the paper
	macKeyLen  = 32
	macTagLen  = 16 // truncated HMAC-SHA256 tag
	ctrIVLen   = aes.BlockSize
	gcmNonceLn = 12
)

// Errors returned by decryption.
var (
	ErrAuth   = errors.New("secret: ciphertext authentication failed")
	ErrFormat = errors.New("secret: malformed ciphertext")
)

// Key is the client secret: the pivot set plus symmetric cipher keys, and
// optionally the distribution-hiding distance transformation (see
// transform.go). It must never be sent to the similarity-cloud server.
type Key struct {
	pivots        *pivot.Set
	mode          Mode
	aesKey        []byte
	macKey        []byte
	distTransform *transform.Monotone
}

// Generate creates a fresh secret key for the given pivot set, drawing
// cipher keys from crypto/rand.
func Generate(pivots *pivot.Set, mode Mode) (*Key, error) {
	return GenerateFrom(rand.Reader, pivots, mode)
}

// GenerateFrom is Generate with an explicit entropy source (tests use a
// deterministic reader).
func GenerateFrom(random io.Reader, pivots *pivot.Set, mode Mode) (*Key, error) {
	if pivots == nil || pivots.N() == 0 {
		return nil, errors.New("secret: key requires a non-empty pivot set")
	}
	if mode != ModeCTRHMAC && mode != ModeGCM {
		return nil, fmt.Errorf("secret: unknown cipher mode %d", mode)
	}
	k := &Key{pivots: pivots, mode: mode, aesKey: make([]byte, aesKeyLen)}
	if _, err := io.ReadFull(random, k.aesKey); err != nil {
		return nil, fmt.Errorf("secret: generating AES key: %w", err)
	}
	if mode == ModeCTRHMAC {
		k.macKey = make([]byte, macKeyLen)
		if _, err := io.ReadFull(random, k.macKey); err != nil {
			return nil, fmt.Errorf("secret: generating MAC key: %w", err)
		}
	}
	return k, nil
}

// Pivots exposes the pivot set (client-side use only).
func (k *Key) Pivots() *pivot.Set { return k.pivots }

// Mode returns the cipher mode.
func (k *Key) Mode() Mode { return k.mode }

// EncodeObject serializes a metric object to the plaintext wire form used
// inside ciphertexts: id uint64 | dim uint32 | dim × float32, little endian.
func EncodeObject(o metric.Object) []byte {
	buf := make([]byte, 8+4+4*len(o.Vec))
	binary.LittleEndian.PutUint64(buf[0:], o.ID)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(o.Vec)))
	for i, f := range o.Vec {
		binary.LittleEndian.PutUint32(buf[12+4*i:], math.Float32bits(f))
	}
	return buf
}

// DecodeObject reverses EncodeObject.
func DecodeObject(buf []byte) (metric.Object, error) {
	if len(buf) < 12 {
		return metric.Object{}, ErrFormat
	}
	dim := binary.LittleEndian.Uint32(buf[8:])
	if uint64(len(buf)) != 12+4*uint64(dim) {
		return metric.Object{}, ErrFormat
	}
	o := metric.Object{
		ID:  binary.LittleEndian.Uint64(buf[0:]),
		Vec: make(metric.Vector, dim),
	}
	for i := range o.Vec {
		o.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[12+4*i:]))
	}
	return o, nil
}

// Seal encrypts an arbitrary plaintext under the key, producing a
// self-contained ciphertext (mode byte | nonce/IV | payload | tag).
func (k *Key) Seal(plaintext []byte) ([]byte, error) {
	switch k.mode {
	case ModeCTRHMAC:
		return k.sealCTR(plaintext)
	case ModeGCM:
		return k.sealGCM(plaintext)
	}
	return nil, fmt.Errorf("secret: unknown cipher mode %d", k.mode)
}

// Open decrypts a ciphertext produced by Seal, verifying integrity.
func (k *Key) Open(ct []byte) ([]byte, error) {
	if len(ct) < 1 {
		return nil, ErrFormat
	}
	if Mode(ct[0]) != k.mode {
		return nil, fmt.Errorf("%w: ciphertext mode %d, key mode %d", ErrFormat, ct[0], k.mode)
	}
	switch k.mode {
	case ModeCTRHMAC:
		return k.openCTR(ct[1:])
	case ModeGCM:
		return k.openGCM(ct[1:])
	}
	return nil, fmt.Errorf("secret: unknown cipher mode %d", k.mode)
}

func (k *Key) sealCTR(plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(k.aesKey)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 1+ctrIVLen+len(plaintext)+macTagLen)
	out[0] = byte(ModeCTRHMAC)
	iv := out[1 : 1+ctrIVLen]
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, err
	}
	body := out[1+ctrIVLen : 1+ctrIVLen+len(plaintext)]
	cipher.NewCTR(block, iv).XORKeyStream(body, plaintext)
	mac := hmac.New(sha256.New, k.macKey)
	mac.Write(out[:1+ctrIVLen+len(plaintext)])
	copy(out[1+ctrIVLen+len(plaintext):], mac.Sum(nil)[:macTagLen])
	return out, nil
}

func (k *Key) openCTR(ct []byte) ([]byte, error) {
	if len(ct) < ctrIVLen+macTagLen {
		return nil, ErrFormat
	}
	bodyEnd := len(ct) - macTagLen
	mac := hmac.New(sha256.New, k.macKey)
	mac.Write([]byte{byte(ModeCTRHMAC)})
	mac.Write(ct[:bodyEnd])
	if !hmac.Equal(mac.Sum(nil)[:macTagLen], ct[bodyEnd:]) {
		return nil, ErrAuth
	}
	block, err := aes.NewCipher(k.aesKey)
	if err != nil {
		return nil, err
	}
	iv := ct[:ctrIVLen]
	body := ct[ctrIVLen:bodyEnd]
	pt := make([]byte, len(body))
	cipher.NewCTR(block, iv).XORKeyStream(pt, body)
	return pt, nil
}

func (k *Key) sealGCM(plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(k.aesKey)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcmNonceLn)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	out := make([]byte, 0, 1+gcmNonceLn+len(plaintext)+aead.Overhead())
	out = append(out, byte(ModeGCM))
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, nil), nil
}

func (k *Key) openGCM(ct []byte) ([]byte, error) {
	if len(ct) < gcmNonceLn {
		return nil, ErrFormat
	}
	block, err := aes.NewCipher(k.aesKey)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, ct[:gcmNonceLn], ct[gcmNonceLn:], nil)
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}

// EncryptObject serializes and encrypts a metric object — the client side of
// the paper's Algorithm 1, line 8 ("store encrypted data only").
func (k *Key) EncryptObject(o metric.Object) ([]byte, error) {
	return k.Seal(EncodeObject(o))
}

// DecryptObject decrypts and deserializes a candidate object received from
// the server — Algorithm 2, line 13.
func (k *Key) DecryptObject(ct []byte) (metric.Object, error) {
	pt, err := k.Open(ct)
	if err != nil {
		return metric.Object{}, err
	}
	return DecodeObject(pt)
}
