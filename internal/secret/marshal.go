package secret

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"simcloud/internal/metric"
	"simcloud/internal/pivot"
	"simcloud/internal/transform"
)

// Key file format (little endian):
//
//	magic    [8]byte "SIMCKEY1"
//	mode     uint8
//	aesLen   uint8   | aes key bytes
//	macLen   uint8   | mac key bytes (0 for GCM)
//	distLen  uint16  | distance-function name bytes
//	nPivots  uint32
//	dim      uint32
//	pivots   nPivots × dim × float32
//	trLen    uint32  | distance-transform blob (0 = none)
//
// The data owner hands this blob to authorized clients over a channel of
// their choosing; it must never reach the similarity-cloud server.

var keyMagic = [8]byte{'S', 'I', 'M', 'C', 'K', 'E', 'Y', '1'}

// Marshal serializes the key (including the pivots) for distribution to
// authorized clients.
func (k *Key) Marshal() ([]byte, error) {
	pivots := k.pivots.Pivots
	if len(pivots) == 0 {
		return nil, errors.New("secret: cannot marshal a key without pivots")
	}
	dim := len(pivots[0])
	distName := k.pivots.Dist.Name()
	size := 8 + 1 + 1 + len(k.aesKey) + 1 + len(k.macKey) + 2 + len(distName) + 4 + 4 + 4*len(pivots)*dim
	out := make([]byte, 0, size)
	out = append(out, keyMagic[:]...)
	out = append(out, byte(k.mode))
	out = append(out, byte(len(k.aesKey)))
	out = append(out, k.aesKey...)
	out = append(out, byte(len(k.macKey)))
	out = append(out, k.macKey...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(distName)))
	out = append(out, distName...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(pivots)))
	out = binary.LittleEndian.AppendUint32(out, uint32(dim))
	for _, p := range pivots {
		if len(p) != dim {
			return nil, fmt.Errorf("secret: pivot dimension %d, want %d", len(p), dim)
		}
		for _, f := range p {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(f))
		}
	}
	if k.distTransform != nil {
		blob := k.distTransform.Marshal()
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	} else {
		out = binary.LittleEndian.AppendUint32(out, 0)
	}
	return out, nil
}

// Unmarshal reconstructs a key marshaled by Marshal.
func Unmarshal(buf []byte) (*Key, error) {
	if len(buf) < 8 || [8]byte(buf[:8]) != keyMagic {
		return nil, errors.New("secret: not a key blob")
	}
	buf = buf[8:]
	take := func(n int) ([]byte, error) {
		if len(buf) < n {
			return nil, errors.New("secret: truncated key blob")
		}
		b := buf[:n]
		buf = buf[n:]
		return b, nil
	}
	b, err := take(2)
	if err != nil {
		return nil, err
	}
	mode := Mode(b[0])
	aesLen := int(b[1])
	aesKey, err := take(aesLen)
	if err != nil {
		return nil, err
	}
	b, err = take(1)
	if err != nil {
		return nil, err
	}
	macKey, err := take(int(b[0]))
	if err != nil {
		return nil, err
	}
	b, err = take(2)
	if err != nil {
		return nil, err
	}
	nameB, err := take(int(binary.LittleEndian.Uint16(b)))
	if err != nil {
		return nil, err
	}
	dist, err := metric.ByName(string(nameB))
	if err != nil {
		return nil, err
	}
	b, err = take(8)
	if err != nil {
		return nil, err
	}
	nPivots := binary.LittleEndian.Uint32(b)
	dim := binary.LittleEndian.Uint32(b[4:])
	if nPivots == 0 || nPivots > 1<<20 || dim == 0 || dim > 1<<20 {
		return nil, fmt.Errorf("secret: implausible key header pivots=%d dim=%d", nPivots, dim)
	}
	vecs := make([]metric.Vector, nPivots)
	for i := range vecs {
		raw, err := take(4 * int(dim))
		if err != nil {
			return nil, err
		}
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
		}
		vecs[i] = v
	}
	var distTransform *transform.Monotone
	b, err = take(4)
	if err != nil {
		return nil, err
	}
	if trLen := int(binary.LittleEndian.Uint32(b)); trLen > 0 {
		blob, err := take(trLen)
		if err != nil {
			return nil, err
		}
		distTransform, err = transform.Unmarshal(blob)
		if err != nil {
			return nil, err
		}
	}
	if len(buf) != 0 {
		return nil, errors.New("secret: trailing bytes in key blob")
	}
	if mode != ModeCTRHMAC && mode != ModeGCM {
		return nil, fmt.Errorf("secret: unknown cipher mode %d", mode)
	}
	if len(aesKey) != aesKeyLen {
		return nil, fmt.Errorf("secret: AES key length %d, want %d", len(aesKey), aesKeyLen)
	}
	if mode == ModeCTRHMAC && len(macKey) != macKeyLen {
		return nil, fmt.Errorf("secret: MAC key length %d, want %d", len(macKey), macKeyLen)
	}
	return &Key{
		pivots:        pivot.NewSet(dist, vecs),
		mode:          mode,
		aesKey:        aesKey,
		macKey:        macKey,
		distTransform: distTransform,
	}, nil
}
