// Package simd holds the unrolled hot-loop kernels behind the metric
// distance functions and the pivot machinery: float32→float64 accumulation
// for L1/L2/Lp/Chebyshev, the float64 Chebyshev used by pivot filtering, and
// the uint16 quantization gate of the fixed-point promise path.
//
// The package is pure Go — no assembly, no build tags — written so the
// compiler's autovectorizer and scheduler get straight-line unrolled bodies
// with the bounds checks hoisted. The contract every kernel obeys, enforced
// by the property tests in simd_test.go, is bit-for-bit equivalence with the
// scalar reference loop:
//
//   - Sum kernels (L1, SqL2, PowSum) keep a single accumulator and add the
//     per-element terms in index order, exactly like the scalar loop —
//     unrolling only removes loop overhead and lets the independent
//     subtract/abs/multiply work of 4–8 elements overlap. Reassociating the
//     sum into lanes would be faster but would change results in the last
//     bit, and equal distances must stay equal across every code path (the
//     ranked-list equivalence suites compare them exactly).
//   - Max kernels (Chebyshev, AbsMaxDiff64) may use multiple accumulator
//     lanes: max over non-NaN floats is associative and commutative, so the
//     lane split cannot change the result.
package simd

import "math"

// L1 returns Σ|a[i]−b[i]| accumulated in float64. Both slices must have the
// same length (callers check dimensions; see metric.dimCheck).
func L1(a, b []float32) float64 {
	n := len(a)
	_ = b[:n]
	var s float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		if d0 < 0 {
			d0 = -d0
		}
		if d1 < 0 {
			d1 = -d1
		}
		if d2 < 0 {
			d2 = -d2
		}
		if d3 < 0 {
			d3 = -d3
		}
		s += d0
		s += d1
		s += d2
		s += d3
	}
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// SqL2 returns Σ(a[i]−b[i])² accumulated in float64 (the squared Euclidean
// distance; the caller takes the root).
func SqL2(a, b []float32) float64 {
	n := len(a)
	_ = b[:n]
	var s float64
	i := 0
	for ; i+8 <= n; i += 8 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		d4 := float64(a[i+4]) - float64(b[i+4])
		d5 := float64(a[i+5]) - float64(b[i+5])
		d6 := float64(a[i+6]) - float64(b[i+6])
		d7 := float64(a[i+7]) - float64(b[i+7])
		s += d0 * d0
		s += d1 * d1
		s += d2 * d2
		s += d3 * d3
		s += d4 * d4
		s += d5 * d5
		s += d6 * d6
		s += d7 * d7
	}
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Chebyshev returns max|a[i]−b[i]| in float64. Four independent max lanes
// break the loop-carried dependence; the lane merge is exact because max is
// associative and commutative.
func Chebyshev(a, b []float32) float64 {
	n := len(a)
	_ = b[:n]
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := math.Abs(float64(a[i]) - float64(b[i]))
		d1 := math.Abs(float64(a[i+1]) - float64(b[i+1]))
		d2 := math.Abs(float64(a[i+2]) - float64(b[i+2]))
		d3 := math.Abs(float64(a[i+3]) - float64(b[i+3]))
		if d0 > m0 {
			m0 = d0
		}
		if d1 > m1 {
			m1 = d1
		}
		if d2 > m2 {
			m2 = d2
		}
		if d3 > m3 {
			m3 = d3
		}
	}
	for ; i < n; i++ {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m0 {
			m0 = d
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// PowSum returns Σ|a[i]−b[i]|^p accumulated in float64 (the Minkowski Lp
// core; the caller applies the outer 1/p root). math.Pow dominates the cost,
// so the unroll only overlaps the subtract/abs work, still adding terms in
// index order through the single accumulator.
func PowSum(a, b []float32, p float64) float64 {
	n := len(a)
	_ = b[:n]
	var s float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := math.Abs(float64(a[i]) - float64(b[i]))
		d1 := math.Abs(float64(a[i+1]) - float64(b[i+1]))
		d2 := math.Abs(float64(a[i+2]) - float64(b[i+2]))
		d3 := math.Abs(float64(a[i+3]) - float64(b[i+3]))
		s += math.Pow(d0, p)
		s += math.Pow(d1, p)
		s += math.Pow(d2, p)
		s += math.Pow(d3, p)
	}
	for ; i < n; i++ {
		s += math.Pow(math.Abs(float64(a[i])-float64(b[i])), p)
	}
	return s
}

// DotNorms returns (Σ a[i]·b[i], Σ a[i]², Σ b[i]²) accumulated in float64 —
// the three sums behind the cosine/angular distance, computed in one pass.
// Each sum keeps a single accumulator and adds its per-element terms in
// index order (the sum-kernel contract above), so the results are
// bit-for-bit identical to three scalar reference loops; the unroll only
// overlaps the independent multiply work of four elements.
func DotNorms(a, b []float32) (dot, na, nb float64) {
	n := len(a)
	_ = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		a0, b0 := float64(a[i]), float64(b[i])
		a1, b1 := float64(a[i+1]), float64(b[i+1])
		a2, b2 := float64(a[i+2]), float64(b[i+2])
		a3, b3 := float64(a[i+3]), float64(b[i+3])
		dot += a0 * b0
		dot += a1 * b1
		dot += a2 * b2
		dot += a3 * b3
		na += a0 * a0
		na += a1 * a1
		na += a2 * a2
		na += a3 * a3
		nb += b0 * b0
		nb += b1 * b1
		nb += b2 * b2
		nb += b3 * b3
	}
	for ; i < n; i++ {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	return dot, na, nb
}

// AbsMaxDiff64 returns max|a[i]−b[i]| over the first min(len(a), len(b))
// elements — the pivot-filtering lower bound of the paper's Algorithm 3
// (pivot.LowerBound), which compares two float64 distance vectors.
func AbsMaxDiff64(a, b []float64) float64 {
	n := min(len(a), len(b))
	a, b = a[:n], b[:n]
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := math.Abs(a[i] - b[i])
		d1 := math.Abs(a[i+1] - b[i+1])
		d2 := math.Abs(a[i+2] - b[i+2])
		d3 := math.Abs(a[i+3] - b[i+3])
		if d0 > m0 {
			m0 = d0
		}
		if d1 > m1 {
			m1 = d1
		}
		if d2 > m2 {
			m2 = d2
		}
		if d3 > m3 {
			m3 = d3
		}
	}
	for ; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > m0 {
			m0 = d
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// CanQuantizeU16 reports whether every distance lies exactly on the
// non-negative uint16 integer grid — the gate of the fixed-point promise
// path: when it holds, each distance is exactly representable as an integer
// below 2^16 and promise sums over such terms are exact dyadic rationals in
// float64 (see mindex's promiser). The check rejects NaN, negatives,
// fractional values and anything ≥ 65536.
func CanQuantizeU16(dists []float64) bool {
	for _, d := range dists {
		if !(d >= 0) || d >= 65536 || d != math.Trunc(d) {
			return false
		}
	}
	return true
}

// QuantizeDistsU16 converts a distance vector that passed CanQuantizeU16
// into its exact uint16 representation, appending to dst (pass dst[:0] to
// reuse a buffer). It returns false without writing when the vector does not
// qualify.
func QuantizeDistsU16(dst []uint16, dists []float64) ([]uint16, bool) {
	if !CanQuantizeU16(dists) {
		return dst, false
	}
	for _, d := range dists {
		dst = append(dst, uint16(d))
	}
	return dst, true
}
