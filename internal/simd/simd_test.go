package simd

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Scalar reference loops — the exact accumulation the metric package used
// before the kernels existed. The property tests assert the unrolled kernels
// reproduce these bit-for-bit on every dimension.

func scalarL1(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func scalarSqL2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func scalarChebyshev(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func scalarPowSum(a, b []float32, p float64) float64 {
	var s float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		s += math.Pow(d, p)
	}
	return s
}

func scalarDotNorms(a, b []float32) (dot, na, nb float64) {
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	return dot, na, nb
}

func scalarAbsMaxDiff64(a, b []float64) float64 {
	n := min(len(a), len(b))
	var m float64
	for i := range n {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// sameBits reports float64 identity including the sign of zero — the
// equivalence the ranked-list suites depend on (equal distances must stay
// equal across code paths).
func sameBits(x, y float64) bool {
	return math.Float64bits(x) == math.Float64bits(y)
}

// randVec draws components from a mix of smooth values, exact integers
// (quantization-friendly), repeats and zeros so ties and cancellation
// actually occur.
func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		switch rng.IntN(4) {
		case 0:
			v[i] = float32(rng.NormFloat64() * 100)
		case 1:
			v[i] = float32(rng.IntN(256))
		case 2:
			v[i] = 0
		default:
			v[i] = float32(rng.Float64()*2 - 1)
		}
	}
	return v
}

// TestKernelsMatchScalar sweeps every dimension 1..130 — crossing every
// unroll-width boundary (4, 8) with every remainder — with many random
// vector pairs per dimension, asserting bitwise agreement of all float32
// kernels with the scalar references.
func TestKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for dim := 1; dim <= 130; dim++ {
		for range 20 {
			a, b := randVec(rng, dim), randVec(rng, dim)
			if got, want := L1(a, b), scalarL1(a, b); !sameBits(got, want) {
				t.Fatalf("L1 dim %d: got %x, want %x", dim, got, want)
			}
			if got, want := SqL2(a, b), scalarSqL2(a, b); !sameBits(got, want) {
				t.Fatalf("SqL2 dim %d: got %x, want %x", dim, got, want)
			}
			if got, want := Chebyshev(a, b), scalarChebyshev(a, b); !sameBits(got, want) {
				t.Fatalf("Chebyshev dim %d: got %x, want %x", dim, got, want)
			}
			p := 1 + rng.Float64()*3
			if got, want := PowSum(a, b, p), scalarPowSum(a, b, p); !sameBits(got, want) {
				t.Fatalf("PowSum dim %d p=%g: got %x, want %x", dim, p, got, want)
			}
			dot, na, nb := DotNorms(a, b)
			wd, wa, wb := scalarDotNorms(a, b)
			if !sameBits(dot, wd) || !sameBits(na, wa) || !sameBits(nb, wb) {
				t.Fatalf("DotNorms dim %d: got (%x,%x,%x), want (%x,%x,%x)",
					dim, dot, na, nb, wd, wa, wb)
			}
		}
	}
}

// TestAbsMaxDiff64MatchesScalar covers the float64 pivot-filter kernel,
// including mismatched lengths (LowerBound truncates to the shorter vector).
func TestAbsMaxDiff64MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for dim := 1; dim <= 130; dim++ {
		for range 10 {
			a := make([]float64, dim)
			b := make([]float64, rng.IntN(dim)+1)
			for i := range a {
				a[i] = rng.NormFloat64() * 50
			}
			for i := range b {
				b[i] = rng.NormFloat64() * 50
			}
			if got, want := AbsMaxDiff64(a, b), scalarAbsMaxDiff64(a, b); !sameBits(got, want) {
				t.Fatalf("AbsMaxDiff64 %d/%d: got %x, want %x", len(a), len(b), got, want)
			}
		}
	}
}

// TestCanQuantizeU16 pins the quantization gate to exactly the non-negative
// uint16 integer grid.
func TestCanQuantizeU16(t *testing.T) {
	cases := []struct {
		dists []float64
		want  bool
	}{
		{nil, true},
		{[]float64{0, 1, 2, 65535}, true},
		{[]float64{math.Copysign(0, -1)}, true}, // -0 is on the grid
		{[]float64{65536}, false},
		{[]float64{-1}, false},
		{[]float64{0.5}, false},
		{[]float64{math.NaN()}, false},
		{[]float64{math.Inf(1)}, false},
		{[]float64{3, 4, 4.000001}, false},
	}
	for _, c := range cases {
		if got := CanQuantizeU16(c.dists); got != c.want {
			t.Errorf("CanQuantizeU16(%v) = %v, want %v", c.dists, got, c.want)
		}
		q, ok := QuantizeDistsU16(nil, c.dists)
		if ok != c.want {
			t.Errorf("QuantizeDistsU16(%v) ok = %v, want %v", c.dists, ok, c.want)
		}
		if ok {
			for i, u := range q {
				if float64(u) != math.Abs(c.dists[i]) {
					t.Errorf("QuantizeDistsU16(%v)[%d] = %d", c.dists, i, u)
				}
			}
		}
	}
}

// FuzzKernels lets the fuzzer hunt for inputs where any kernel diverges from
// its scalar reference; the byte corpus is reinterpreted as two float32
// vectors of equal, arbitrary length.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(make([]byte, 130*8))
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 8 // bytes per element pair
		if n == 0 {
			return
		}
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range n {
			a[i] = math.Float32frombits(le32(raw[i*8:]))
			b[i] = math.Float32frombits(le32(raw[i*8+4:]))
		}
		// NaN payloads can legally differ between code paths; the metric
		// domain is finite vectors, so normalize them away.
		for i := range n {
			if a[i] != a[i] {
				a[i] = 0
			}
			if b[i] != b[i] {
				b[i] = 0
			}
		}
		if got, want := L1(a, b), scalarL1(a, b); !sameBits(got, want) {
			t.Fatalf("L1: got %x, want %x", got, want)
		}
		if got, want := SqL2(a, b), scalarSqL2(a, b); !sameBits(got, want) {
			t.Fatalf("SqL2: got %x, want %x", got, want)
		}
		if got, want := Chebyshev(a, b), scalarChebyshev(a, b); !sameBits(got, want) {
			t.Fatalf("Chebyshev: got %x, want %x", got, want)
		}
		if got, want := PowSum(a, b, 2.5), scalarPowSum(a, b, 2.5); !sameBits(got, want) {
			t.Fatalf("PowSum: got %x, want %x", got, want)
		}
	})
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
