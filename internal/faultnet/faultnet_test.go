package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back until EOF.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func startProxy(t *testing.T, backend string, sched Schedule) *Proxy {
	t.Helper()
	p, err := Listen("127.0.0.1:0", backend, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func echoOnce(t *testing.T, c net.Conn, msg []byte) error {
	t.Helper()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write(msg); err != nil {
		return err
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		return err
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %q want %q", got, msg)
	}
	return nil
}

func TestPassThrough(t *testing.T) {
	be := echoServer(t)
	p := startProxy(t, be.Addr().String(), Clean())
	c := dialProxy(t, p)
	if err := echoOnce(t, c, []byte("hello through the proxy")); err != nil {
		t.Fatalf("clean echo failed: %v", err)
	}
}

func TestDropRule(t *testing.T) {
	be := echoServer(t)
	// Connection 0 is dropped at accept; connection 1 is clean.
	p := startProxy(t, be.Addr().String(), Scripted(Rule{Drop: true}))
	c := dialProxy(t, p)
	c.SetDeadline(time.Now().Add(5 * time.Second))
	// The dropped connection dies before any byte: the first read fails.
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on dropped connection succeeded")
	}
	c2 := dialProxy(t, p)
	if err := echoOnce(t, c2, []byte("second conn is clean")); err != nil {
		t.Fatalf("connection after the dropped one failed: %v", err)
	}
}

func TestDelayRule(t *testing.T) {
	be := echoServer(t)
	const d = 30 * time.Millisecond
	p := startProxy(t, be.Addr().String(), Scripted(Rule{Delay: d}))
	c := dialProxy(t, p)
	start := time.Now()
	if err := echoOnce(t, c, []byte("delayed")); err != nil {
		t.Fatalf("delayed echo failed: %v", err)
	}
	// Both directions delay, so a round trip takes at least 2d.
	if elapsed := time.Since(start); elapsed < 2*d {
		t.Fatalf("round trip took %v, want >= %v", elapsed, 2*d)
	}
}

func TestSeverAfterBytes(t *testing.T) {
	be := echoServer(t)
	p := startProxy(t, be.Addr().String(), Scripted(Rule{SeverAfterBytes: 8}))
	c := dialProxy(t, p)
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write(make([]byte, 64)); err != nil {
		// The write may race the sever; either outcome is a dead conn.
		return
	}
	// Only 8 bytes crossed; the echo can never complete.
	buf := make([]byte, 64)
	n, err := io.ReadFull(c, buf)
	if err == nil {
		t.Fatalf("read %d echoed bytes through a severed connection", n)
	}
	if n > 8 {
		t.Fatalf("%d bytes crossed a connection severed after 8", n)
	}
}

func TestHalfCloseAfterBytes(t *testing.T) {
	// Backend: immediately sends 16 bytes, then echoes whatever arrives
	// into a side channel so the test can observe client→backend liveness.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	received := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write(bytes.Repeat([]byte{0xEE}, 16))
		buf := make([]byte, 64)
		n, _ := c.Read(buf)
		received <- buf[:n]
	}()

	p := startProxy(t, ln.Addr().String(), Scripted(Rule{HalfCloseAfterBytes: 8}))
	c := dialProxy(t, p)
	c.SetDeadline(time.Now().Add(5 * time.Second))

	// Reads deliver exactly the 8 bytes before the half-close, then EOF.
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("reading half-closed stream: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("read %d bytes before EOF, want 8", len(got))
	}
	// The other direction is still alive: a write must reach the backend.
	if _, err := c.Write([]byte("still alive")); err != nil {
		t.Fatalf("write after half-close failed: %v", err)
	}
	select {
	case msg := <-received:
		if string(msg) != "still alive" {
			t.Fatalf("backend received %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backend never received the post-half-close write")
	}
}

func TestSeverAndPartition(t *testing.T) {
	be := echoServer(t)
	p := startProxy(t, be.Addr().String(), Clean())
	c := dialProxy(t, p)
	if err := echoOnce(t, c, []byte("before")); err != nil {
		t.Fatal(err)
	}
	p.Sever()
	if err := echoOnce(t, c, []byte("after-sever")); err == nil {
		t.Fatal("echo succeeded over a severed connection")
	}
	// Sever is transient: a fresh connection works.
	c2 := dialProxy(t, p)
	if err := echoOnce(t, c2, []byte("reconnect")); err != nil {
		t.Fatalf("reconnect after sever failed: %v", err)
	}

	p.Partition(true)
	if err := echoOnce(t, c2, []byte("partitioned")); err == nil {
		t.Fatal("echo succeeded across a partition")
	}
	c3 := dialProxy(t, p)
	c3.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c3.Read(make([]byte, 1)); err == nil {
		t.Fatal("new connection stayed alive across a partition")
	}
	p.Partition(false)
	c4 := dialProxy(t, p)
	if err := echoOnce(t, c4, []byte("healed")); err != nil {
		t.Fatalf("echo after healing failed: %v", err)
	}
}

func TestSetBackend(t *testing.T) {
	be1 := echoServer(t)
	// Backend 2 answers every connection with a fixed banner instead of an
	// echo, so the test can tell the two apart.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go func() {
		for {
			c, err := ln2.Accept()
			if err != nil {
				return
			}
			c.Write([]byte("backend2"))
			c.Close()
		}
	}()

	p := startProxy(t, be1.Addr().String(), Clean())
	c := dialProxy(t, p)
	if err := echoOnce(t, c, []byte("one")); err != nil {
		t.Fatal(err)
	}
	p.SetBackend(ln2.Addr().String())
	c2 := dialProxy(t, p)
	c2.SetDeadline(time.Now().Add(5 * time.Second))
	banner, _ := io.ReadAll(c2)
	if string(banner) != "backend2" {
		t.Fatalf("after SetBackend got %q, want backend2 banner", banner)
	}
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	a, b := Seeded(42), Seeded(42)
	other := Seeded(43)
	same := true
	var delayed int
	for i := range 256 {
		ra, rb := a.RuleFor(i), b.RuleFor(i)
		if ra != rb {
			t.Fatalf("seed 42 disagrees with itself at conn %d: %+v vs %+v", i, ra, rb)
		}
		if ra != other.RuleFor(i) {
			same = false
		}
		if ra.Delay > 0 {
			delayed++
		}
		if ra.Drop || ra.SeverAfterBytes != 0 || ra.HalfCloseAfterBytes != 0 {
			t.Fatalf("seeded schedule produced a destructive fault at conn %d: %+v", i, ra)
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
	if delayed == 0 {
		t.Fatal("seeded schedule delayed nothing in 256 connections")
	}
}
