// Package faultnet is a deterministic fault-injection harness for the
// cluster tests: a TCP proxy that sits between the coordinator and one
// simserver node and misbehaves on command. Each accepted connection gets a
// Rule from a Schedule — keyed by the connection's accept index, so a seeded
// schedule reproduces the same faults run after run — and the proxy as a
// whole can be severed, partitioned, or re-pointed at a restarted backend.
//
// The proxy's front address is stable across backend restarts: tests hand
// the coordinator proxy addresses, kill and restart the real server on a
// fresh port, and re-point the proxy with SetBackend — no port-rebind races,
// and the coordinator's re-dial lands on the recovered node deterministically.
//
// Faults per connection (Rule): drop at accept, fixed per-chunk forwarding
// delay, sever after N client→backend bytes, half-close the backend→client
// direction after N bytes. Faults per proxy: Sever (kill every live
// connection now), Partition (sever and refuse new connections until
// healed).
package faultnet

import (
	"net"
	"sync"
	"time"
)

// Rule is the fault plan for one proxied connection. The zero Rule forwards
// faithfully.
type Rule struct {
	// Drop closes the connection immediately at accept: the dialer sees a
	// connection that dies before any byte moves.
	Drop bool
	// Delay is added before forwarding each chunk, in both directions —
	// latency injection. It reorders nothing and corrupts nothing, so
	// query results must be invariant under any Delay schedule.
	Delay time.Duration
	// SeverAfterBytes kills both directions after that many client→backend
	// bytes have been forwarded (0 = never): a mid-request connection loss.
	SeverAfterBytes int64
	// HalfCloseAfterBytes closes only the backend→client direction after
	// that many backend→client bytes (0 = never): the client's reads see
	// EOF while its writes still reach the backend — the classic
	// half-open connection.
	HalfCloseAfterBytes int64
}

// Schedule assigns a Rule to each connection by accept index (0-based,
// per proxy).
type Schedule interface {
	RuleFor(conn int) Rule
}

type ruleFunc func(conn int) Rule

func (f ruleFunc) RuleFor(conn int) Rule { return f(conn) }

// Clean is the no-fault schedule: every connection forwards faithfully.
func Clean() Schedule { return ruleFunc(func(int) Rule { return Rule{} }) }

// Scripted applies rules[i] to connection i and forwards faithfully beyond
// the script's end.
func Scripted(rules ...Rule) Schedule {
	return ruleFunc(func(conn int) Rule {
		if conn < len(rules) {
			return rules[conn]
		}
		return Rule{}
	})
}

// Seeded is a deterministic delay-only schedule: a pseudo-random quarter of
// connections get a small fixed forwarding delay (1–3ms), derived from seed
// and the connection index alone. Delays shake out timing-dependent bugs
// without ever changing results, so it is safe under equivalence assertions;
// combine it with explicit Sever/Partition calls for the destructive faults.
func Seeded(seed int64) Schedule {
	return ruleFunc(func(conn int) Rule {
		x := splitmix64(uint64(seed) + uint64(conn)*0x9E3779B97F4A7C15)
		if x%4 == 0 {
			return Rule{Delay: time.Duration(1+(x>>32)%3) * time.Millisecond}
		}
		return Rule{}
	})
}

// splitmix64 is the SplitMix64 mixer — deterministic, dependency-free
// pseudo-randomness for schedules.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Proxy is one fault-injecting TCP proxy in front of one backend.
type Proxy struct {
	ln    net.Listener
	sched Schedule

	mu          sync.Mutex
	backend     string
	partitioned bool
	closed      bool
	nconn       int
	conns       map[net.Conn]struct{}

	wg sync.WaitGroup
}

// Listen starts a proxy on addr (use "127.0.0.1:0" for an ephemeral port)
// forwarding to backend under the given schedule.
func Listen(addr, backend string, sched Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if sched == nil {
		sched = Clean()
	}
	p := &Proxy{
		ln:      ln,
		sched:   sched,
		backend: backend,
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's stable front address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetBackend re-points the proxy at a new backend address — the restarted
// node's fresh port. Existing connections keep their old backend; new ones
// dial the new address.
func (p *Proxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// Sever kills every live proxied connection immediately. New connections
// are still accepted — this is a transient blip, not a partition.
func (p *Proxy) Sever() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Partition turns the network partition on or off. While partitioned, live
// connections are severed and new connections are accepted then immediately
// closed (the dialer sees a dead peer, not a refused port).
func (p *Proxy) Partition(on bool) {
	p.mu.Lock()
	p.partitioned = on
	if on {
		for c := range p.conns {
			c.Close()
		}
	}
	p.mu.Unlock()
}

// Close shuts the proxy down: stops accepting, severs everything, and waits
// for the forwarding goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		rule := p.sched.RuleFor(p.nconn)
		p.nconn++
		reject := p.closed || p.partitioned || rule.Drop
		backend := p.backend
		p.mu.Unlock()
		if reject {
			client.Close()
			continue
		}
		server, err := net.DialTimeout("tcp", backend, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			client.Close()
			server.Close()
			continue
		}
		p.conns[client] = struct{}{}
		p.conns[server] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(server, client, rule, rule.SeverAfterBytes, p.severBoth(client, server))
		go p.pump(client, server, rule, rule.HalfCloseAfterBytes, p.halfClose(client))
	}
}

// severBoth returns the limit action for the client→backend direction:
// a full connection loss.
func (p *Proxy) severBoth(client, server net.Conn) func() {
	return func() {
		client.Close()
		server.Close()
	}
}

// halfClose returns the limit action for the backend→client direction:
// only the client's read side dies; its writes still flow.
func (p *Proxy) halfClose(client net.Conn) func() {
	return func() {
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		} else {
			client.Close()
		}
	}
}

// pump forwards src→dst applying the rule's delay, firing onLimit once
// after limit forwarded bytes (0 = no limit). A natural stream end (EOF or
// error on either side) tears down both directions — the wire protocol
// never relies on one-way shutdown, only the injected half-close does, and
// that path leaves the paired pump running.
func (p *Proxy) pump(dst, src net.Conn, rule Rule, limit int64, onLimit func()) {
	defer p.wg.Done()
	teardown := true
	defer func() {
		if teardown {
			p.mu.Lock()
			delete(p.conns, src)
			delete(p.conns, dst)
			p.mu.Unlock()
			src.Close()
			dst.Close()
		}
	}()
	buf := make([]byte, 32<<10)
	var forwarded int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if rule.Delay > 0 {
				time.Sleep(rule.Delay)
			}
			chunk := buf[:n]
			if limit > 0 && forwarded+int64(n) >= limit {
				// Forward exactly up to the limit, then inject the fault.
				chunk = chunk[:limit-forwarded]
			}
			if len(chunk) > 0 {
				if _, werr := dst.Write(chunk); werr != nil {
					return
				}
				forwarded += int64(len(chunk))
			}
			if limit > 0 && forwarded >= limit {
				onLimit()
				// The injected fault decides what stays open; don't tear
				// down the paired direction from here.
				teardown = false
				return
			}
		}
		if err != nil {
			return
		}
	}
}
