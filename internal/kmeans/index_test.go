package kmeans

import (
	"fmt"
	"sync"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
)

// buildPlain trains a model on the collection and loads an in-memory index
// with untransformed centroid distances — the plain-space fixture every
// correctness test here shares. The entries keep their plaintext vectors so
// tests can refine candidate sets to exact answers.
func buildPlain(t *testing.T, d *dataset.Dataset, k, fanout int) (*Index, *Model) {
	t.Helper()
	m, err := Train(TrainConfig{K: k, Seed: 77, Dist: d.Dist}, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(Config{NumCentroids: k, Storage: mindex.StorageMemory, Fanout: fanout})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	ps := m.PivotSet()
	entries := make([]mindex.Entry, len(d.Objects))
	for i, o := range d.Objects {
		dists := ps.Distances(o.Vec)
		j, _ := nearest(m.Dist, m.Centroids, o.Vec)
		entries[i] = mindex.Entry{ID: o.ID, Perm: []int32{int32(j)}, Dists: dists, Vec: o.Vec.Clone()}
	}
	if err := ix.Insert(entries); err != nil {
		t.Fatal(err)
	}
	return ix, m
}

func bruteRange(d *dataset.Dataset, q metric.Vector, r float64) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, o := range d.Objects {
		if d.Dist.Dist(q, o.Vec) <= r {
			out[o.ID] = true
		}
	}
	return out
}

func TestNewValidatesConfig(t *testing.T) {
	bad := []Config{
		{NumCentroids: 0, Storage: mindex.StorageMemory},
		{NumCentroids: 4, Storage: mindex.StorageDisk}, // no path
		{NumCentroids: 4, Storage: mindex.StorageKind(99)},
		{NumCentroids: 4, Storage: mindex.StorageMemory, Fanout: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	ix, err := New(Config{NumCentroids: 3, Storage: mindex.StorageMemory})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	good := func(id uint64, cell int32) mindex.Entry {
		return mindex.Entry{ID: id, Perm: []int32{cell}, Dists: []float64{1, 2, 3}}
	}
	if err := ix.Insert([]mindex.Entry{{ID: 1, Dists: []float64{1, 2, 3}}}); err == nil {
		t.Fatal("entry without routing prefix accepted")
	}
	if err := ix.Insert([]mindex.Entry{{ID: 1, Perm: []int32{3}, Dists: []float64{1, 2, 3}}}); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	if err := ix.Insert([]mindex.Entry{{ID: 1, Perm: []int32{0}, Dists: []float64{1, 2}}}); err == nil {
		t.Fatal("short distance vector accepted")
	}
	if err := ix.Insert([]mindex.Entry{good(1, 0), good(1, 1)}); err == nil {
		t.Fatal("in-batch duplicate accepted")
	}
	if ix.Size() != 0 {
		t.Fatalf("rejected batches changed size to %d", ix.Size())
	}
	if err := ix.Insert([]mindex.Entry{good(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert([]mindex.Entry{good(1, 2)}); err == nil {
		t.Fatal("live duplicate accepted")
	}
	if n, err := ix.Delete([]mindex.Entry{{ID: 1}}); err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	if err := ix.Insert([]mindex.Entry{good(1, 0)}); err == nil {
		t.Fatal("tombstoned duplicate accepted")
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	d := dataset.Clustered(11, 400, 10, 8, metric.L2{})
	ix, m := buildPlain(t, d, 8, 0)
	ps := m.PivotSet()
	for qi := 0; qi < 25; qi++ {
		q := d.Objects[qi*7].Vec
		for _, r := range []float64{0.5, 2, 5, 12} {
			want := bruteRange(d, q, r)
			cands, err := ix.RangeByDists(ps.Distances(q), r)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[uint64]bool)
			for _, e := range cands {
				if d.Dist.Dist(q, e.Vec) <= r { // client-side refine
					got[e.ID] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("q=%d r=%g: refined %d results, brute force %d", qi, r, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("q=%d r=%g: true result %d dismissed", qi, r, id)
				}
			}
		}
	}
}

func TestRangeRejectsBadArgs(t *testing.T) {
	d := dataset.Clustered(12, 50, 4, 2, metric.L2{})
	ix, m := buildPlain(t, d, 2, 0)
	if _, err := ix.RangeByDists([]float64{1}, 1); err == nil {
		t.Fatal("short query vector accepted")
	}
	if _, err := ix.RangeByDists(m.PivotSet().Distances(d.Objects[0].Vec), -1); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestApproxRankedOrderAndBudget(t *testing.T) {
	d := dataset.Clustered(13, 300, 8, 6, metric.L2{})
	ix, m := buildPlain(t, d, 6, 0)
	qDists := m.PivotSet().Distances(d.Objects[5].Vec)
	rcs, err := ix.ApproxRanked(qDists, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcs) != 40 {
		t.Fatalf("got %d candidates, want exactly 40", len(rcs))
	}
	for i := 1; i < len(rcs); i++ {
		if rcs[i].Promise < rcs[i-1].Promise {
			t.Fatalf("promise decreased at %d: %g after %g", i, rcs[i].Promise, rcs[i-1].Promise)
		}
	}
	for _, rc := range rcs {
		if len(rc.Prefix) != 1 || rc.Prefix[0] != rc.Entry.Perm[0] {
			t.Fatalf("candidate prefix %v does not name its cell %d", rc.Prefix, rc.Entry.Perm[0])
		}
		if rc.Promise != qDists[rc.Prefix[0]] {
			t.Fatalf("promise %g is not the cell distance %g", rc.Promise, qDists[rc.Prefix[0]])
		}
	}
	// Determinism.
	again, err := ix.ApproxRanked(qDists, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rcs {
		if rcs[i].Entry.ID != again[i].Entry.ID {
			t.Fatalf("candidate order not deterministic at %d", i)
		}
	}
	if _, err := ix.ApproxRanked(qDists, 0); err == nil {
		t.Fatal("zero candidate size accepted")
	}
}

func TestApproxFanoutBound(t *testing.T) {
	d := dataset.Clustered(14, 300, 8, 6, metric.L2{})
	ix, m := buildPlain(t, d, 6, 1) // may visit only the single nearest cell
	qDists := m.PivotSet().Distances(d.Objects[0].Vec)
	rcs, err := ix.ApproxRanked(qDists, len(d.Objects))
	if err != nil {
		t.Fatal(err)
	}
	if len(rcs) == 0 {
		t.Fatal("no candidates from the nearest cell")
	}
	first := rcs[0].Prefix[0]
	for _, rc := range rcs {
		if rc.Prefix[0] != first {
			t.Fatalf("fanout 1 visited a second cell %d", rc.Prefix[0])
		}
	}
	got, _, prefix, err := ix.FirstCellRanked(qDists)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefix) != 1 || prefix[0] != first {
		t.Fatalf("FirstCellRanked picked cell %v, fanout-1 approx picked %d", prefix, first)
	}
	if len(got) != len(rcs) {
		t.Fatalf("FirstCellRanked returned %d entries, fanout-1 approx %d", len(got), len(rcs))
	}
}

func TestDeleteHidesEverywhere(t *testing.T) {
	d := dataset.Clustered(15, 200, 6, 4, metric.L2{})
	ix, m := buildPlain(t, d, 4, 0)
	ps := m.PivotSet()
	victim := d.Objects[17]
	if n, err := ix.Delete([]mindex.Entry{{ID: victim.ID}}); err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	if ix.Size() != len(d.Objects)-1 || ix.Dead() != 1 {
		t.Fatalf("size/dead = %d/%d", ix.Size(), ix.Dead())
	}
	// Unknown and repeated deletes are no-ops.
	if n, err := ix.Delete([]mindex.Entry{{ID: victim.ID}, {ID: 999999}}); err != nil || n != 0 {
		t.Fatalf("repeat delete = %d, %v", n, err)
	}
	qDists := ps.Distances(victim.Vec)
	cands, err := ix.RangeByDists(qDists, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range cands {
		if e.ID == victim.ID {
			t.Fatal("tombstoned entry surfaced in range search")
		}
	}
	rcs, err := ix.ApproxRanked(qDists, len(d.Objects))
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range rcs {
		if rc.Entry.ID == victim.ID {
			t.Fatal("tombstoned entry surfaced in approx search")
		}
	}
	entries, _, _, err := ix.FirstCellRanked(qDists)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.ID == victim.ID {
			t.Fatal("tombstoned entry surfaced in first-cell search")
		}
	}
}

func TestStatsShape(t *testing.T) {
	d := dataset.Clustered(16, 120, 6, 3, metric.L2{})
	ix, _ := buildPlain(t, d, 3, 0)
	s := ix.Stats()
	if s.Cells != 3 || s.Live != 120 || s.Dead != 0 || s.TotalStored != 120 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxCell < (120+2)/3 {
		t.Fatalf("max cell %d below the pigeonhole floor", s.MaxCell)
	}
	entries, bytes := ix.IngestStats()
	if entries != 120 || bytes == 0 {
		t.Fatalf("ingest stats = %d entries, %d bytes", entries, bytes)
	}
	if _, _, ok := ix.CacheStats(); ok {
		t.Fatal("memory store reported a disk cache")
	}
}

func TestConcurrentInsertSearch(t *testing.T) {
	d := dataset.Clustered(17, 600, 8, 5, metric.L2{})
	m, err := Train(TrainConfig{K: 5, Seed: 77, Dist: d.Dist}, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(Config{NumCentroids: 5, Storage: mindex.StorageMemory})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ps := m.PivotSet()
	mkEntry := func(o metric.Object) mindex.Entry {
		j, _ := nearest(m.Dist, m.Centroids, o.Vec)
		return mindex.Entry{ID: o.ID, Perm: []int32{int32(j)}, Dists: ps.Distances(o.Vec), Vec: o.Vec.Clone()}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * 150; i < (w+1)*150; i += 10 {
				batch := make([]mindex.Entry, 0, 10)
				for _, o := range d.Objects[i : i+10] {
					batch = append(batch, mkEntry(o))
				}
				if err := ix.Insert(batch); err != nil {
					panic(fmt.Sprintf("insert: %v", err))
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			qDists := ps.Distances(d.Objects[r].Vec)
			for i := 0; i < 50; i++ {
				if _, err := ix.RangeByDists(qDists, 3); err != nil {
					panic(fmt.Sprintf("range: %v", err))
				}
				if _, err := ix.ApproxRanked(qDists, 64); err != nil {
					panic(fmt.Sprintf("approx: %v", err))
				}
				ix.Stats()
			}
		}(r)
	}
	wg.Wait()
	if ix.Size() != 600 {
		t.Fatalf("size = %d after concurrent load", ix.Size())
	}
}
