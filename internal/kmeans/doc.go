// Package kmeans is the second index family of the similarity cloud: a
// k-means clustered routing layer under the same Searcher contract as the
// M-Index (see core.NewKMeansDirect). Where the M-Index partitions the
// metric space by pivot-permutation prefixes, this family partitions it by
// proximity to K Lloyd-iterated centroids: every object routes to its
// nearest centroid's cell, and a query fans out to the nearest centroids in
// ascending centroid-distance order.
//
// The centroids play exactly the role the M-Index pivots play in the
// encrypted deployment. They are client-side secrets: the client wraps them
// in a pivot.Set inside its secret.Key, and the per-object work of
// Algorithm 1 (distances to the reference points, routing prefix,
// encryption) is performed by the same shared coder the other backends use
// — with a one-element prefix, whose single element is the index of the
// nearest centroid. The server-side Index in this package therefore stores
// the same Entry records an encrypted M-Index server would: a ciphertext
// payload, a routing prefix (here: the cell number), and a transformed
// distance vector. It never sees a plaintext vector or a raw distance.
//
// Three query paths mirror the M-Index surface:
//
//   - RangeByDists prunes whole cells with a covering-radius ball bound and
//     the surviving entries with pivot.LowerBound — both true lower bounds
//     (conservative under the key's monotone distance transform, whose
//     radius is scaled by the Lipschitz constant), so exact queries return
//     supersets the client refines to exactness.
//   - ApproxRanked visits cells in ascending (transformed) query–centroid
//     distance and emits their entries as mindex.RankedCandidates — promise
//     is the cell's centroid distance, prefix is the one-element cell path —
//     so the internal/merge (promise, prefix, source) discipline applies
//     unchanged.
//   - FirstCellRanked restricts the candidate set to the single nearest
//     non-empty cell, the analogue of the paper's 1-cell experiment.
//
// Cells reuse the mindex.BucketStore backends (memory and disk) with the
// same zero-copy View protocol; because this index never splits, replaces or
// frees a bucket, a published snapshot's per-cell entry counts pin immutable
// view prefixes with no era machinery at all. Concurrency is the same RCU
// discipline as the M-Index: searches run lock-free against the last
// published state, mutators serialize on a writer mutex and publish
// copy-on-write cell tables atomically.
//
// On top of the routing layer, predict.go provides the learned
// candidate-size predictor: a small monotone model mapping a query's
// distance to its nearest centroid to the candidate count needed to hit a
// target recall, fit on a calibration sample (see FitPredictor). It replaces
// the global CandSize constant per query via Query.TargetRecall.
package kmeans
