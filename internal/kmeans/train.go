package kmeans

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"simcloud/internal/metric"
	"simcloud/internal/pivot"
)

// Model is a trained set of centroids together with the distance function
// they were trained under. Like the M-Index pivot set it is client-side
// state: the data owner trains it on (a sample of) the plaintext collection,
// folds it into a secret.Key via PivotSet, and never ships it to the server.
type Model struct {
	// Dist is the metric the centroids partition.
	Dist metric.Distance
	// Centroids are the cell centers, in cell-index order.
	Centroids []metric.Vector
}

// K returns the number of centroids (= cells).
func (m *Model) K() int { return len(m.Centroids) }

// PivotSet wraps the centroids as a pivot set, ready for secret.Generate:
// the centroids then play the role of the M-Index pivots in the shared
// client-side coder (distances, routing prefix, transform).
func (m *Model) PivotSet() *pivot.Set {
	return pivot.NewSet(m.Dist, m.Centroids)
}

// TrainConfig parametrizes Train.
type TrainConfig struct {
	// K is the number of centroids. Required, at most len(data).
	K int
	// Seed makes training fully deterministic: the same seed, config and
	// data always yield byte-identical centroids.
	Seed uint64
	// MaxIters bounds the Lloyd iterations. 0 means 25 — past convergence
	// for the collection sizes this repo benches.
	MaxIters int
	// SampleCap, when positive, trains on a deterministic sample of at most
	// this many objects instead of the full collection (Lloyd is O(n·K·dim)
	// per iteration; centroid quality saturates long before full-data
	// training pays off).
	SampleCap int
	// Dist is the metric to partition. Required.
	Dist metric.Distance
}

// Train fits K centroids to the collection: k-means++ seeding followed by
// Lloyd iterations until assignments stabilize or MaxIters is reached.
// Assignment uses cfg.Dist (so cells are Voronoi cells of the deployed
// metric); the update step takes coordinate means, re-normalized onto the
// unit sphere for the cosine metric (spherical k-means). An emptied cluster
// is reseeded to the point farthest from its assigned centroid.
//
// Training is deterministic: rng state derives only from cfg.Seed, and all
// accumulation runs in index order.
func Train(cfg TrainConfig, data []metric.Object) (*Model, error) {
	if cfg.Dist == nil {
		return nil, errors.New("kmeans: TrainConfig.Dist is required")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d", cfg.K)
	}
	if cfg.K > len(data) {
		return nil, fmt.Errorf("kmeans: K=%d exceeds collection size %d", cfg.K, len(data))
	}
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 25
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x4b4d4541)) // "KMEA"
	if cfg.SampleCap > 0 && len(data) > cfg.SampleCap {
		idx := rng.Perm(len(data))[:cfg.SampleCap]
		sample := make([]metric.Object, len(idx))
		for i, j := range idx {
			sample[i] = data[j]
		}
		data = sample
		if cfg.K > len(data) {
			return nil, fmt.Errorf("kmeans: K=%d exceeds sample cap %d", cfg.K, cfg.SampleCap)
		}
	}
	dim := len(data[0].Vec)
	centroids := seedPlusPlus(rng, cfg.Dist, data, cfg.K)
	assign := make([]int, len(data))
	for i := range assign {
		assign[i] = -1
	}
	spherical := cfg.Dist.Name() == "cosine"
	sums := make([][]float64, cfg.K)
	for j := range sums {
		sums[j] = make([]float64, dim)
	}
	counts := make([]int, cfg.K)
	for range iters {
		changed := false
		for i, o := range data {
			best, _ := nearest(cfg.Dist, centroids, o.Vec)
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		for j := range sums {
			clear(sums[j])
			counts[j] = 0
		}
		for i, o := range data {
			s := sums[assign[i]]
			for d, v := range o.Vec {
				s[d] += float64(v)
			}
			counts[assign[i]]++
		}
		for j := range centroids {
			if counts[j] == 0 {
				// Reseed to the point farthest from its centroid — the
				// standard deterministic empty-cluster repair.
				far, farD := 0, -1.0
				for i, o := range data {
					if d := cfg.Dist.Dist(o.Vec, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[j] = data[far].Vec.Clone()
				continue
			}
			c := centroids[j]
			inv := 1 / float64(counts[j])
			for d := range c {
				c[d] = float32(sums[j][d] * inv)
			}
			if spherical {
				normalize(c)
			}
		}
	}
	return &Model{Dist: cfg.Dist, Centroids: centroids}, nil
}

// seedPlusPlus is the k-means++ initialization: the first centroid is drawn
// uniformly, each further one with probability proportional to the squared
// distance to the nearest already-chosen centroid.
func seedPlusPlus(rng *rand.Rand, dist metric.Distance, data []metric.Object, k int) []metric.Vector {
	centroids := make([]metric.Vector, 0, k)
	centroids = append(centroids, data[rng.IntN(len(data))].Vec.Clone())
	d2 := make([]float64, len(data))
	total := 0.0
	for i, o := range data {
		d := dist.Dist(o.Vec, centroids[0])
		d2[i] = d * d
		total += d2[i]
	}
	for len(centroids) < k {
		var pick int
		if total <= 0 {
			// Every remaining point coincides with a centroid; any choice is
			// as good as any other — take a uniform one deterministically.
			pick = rng.IntN(len(data))
		} else {
			r := rng.Float64() * total
			for i, w := range d2 {
				if r < w {
					pick = i
					break
				}
				r -= w
				pick = i // guards float leakage: the last index wins
			}
		}
		c := data[pick].Vec.Clone()
		centroids = append(centroids, c)
		total = 0
		for i, o := range data {
			if d := dist.Dist(o.Vec, c); d*d < d2[i] {
				d2[i] = d * d
			}
			total += d2[i]
		}
	}
	return centroids
}

// nearest returns the index of (and distance to) the closest centroid, ties
// broken by the smaller index — the same tie rule pivot.Permutation applies,
// so training-time assignment agrees with the coder's routing prefix.
func nearest(dist metric.Distance, centroids []metric.Vector, v metric.Vector) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for j, c := range centroids {
		if d := dist.Dist(v, c); d < bestD {
			best, bestD = j, d
		}
	}
	return best, bestD
}

func normalize(v metric.Vector) {
	var sq float64
	for _, x := range v {
		sq += float64(x) * float64(x)
	}
	if sq == 0 {
		v[0] = 1
		return
	}
	inv := 1 / math.Sqrt(sq)
	for i := range v {
		v[i] = float32(float64(v[i]) * inv)
	}
}

// Model codec: a versioned binary format so a trained model persists next to
// the secret key material it belongs with (the centroids are secrets — store
// the file client-side).
//
//	magic    [8]byte "SIMKMODL"
//	version  uint8 (1)
//	distLen  uint16 | distance name bytes
//	k, dim   uint32
//	centroid float32 components, row-major
var modelMagic = [8]byte{'S', 'I', 'M', 'K', 'M', 'O', 'D', 'L'}

// ErrModel reports a malformed model blob.
var ErrModel = errors.New("kmeans: invalid model")

// Marshal encodes the model.
func (m *Model) Marshal() ([]byte, error) {
	if m.K() == 0 {
		return nil, fmt.Errorf("%w: no centroids", ErrModel)
	}
	name := m.Dist.Name()
	dim := len(m.Centroids[0])
	buf := make([]byte, 0, 8+1+2+len(name)+8+4*m.K()*dim)
	buf = append(buf, modelMagic[:]...)
	buf = append(buf, 1) // version
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.K()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
	for _, c := range m.Centroids {
		if len(c) != dim {
			return nil, fmt.Errorf("%w: ragged centroid dimensions", ErrModel)
		}
		for _, v := range c {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf, nil
}

// UnmarshalModel decodes a model produced by Marshal. The distance function
// is resolved by name through metric.ByName.
func UnmarshalModel(buf []byte) (*Model, error) {
	if len(buf) < 8+1+2 || [8]byte(buf[:8]) != modelMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrModel)
	}
	buf = buf[8:]
	if buf[0] != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrModel, buf[0])
	}
	buf = buf[1:]
	nameLen := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < nameLen+8 {
		return nil, fmt.Errorf("%w: truncated header", ErrModel)
	}
	dist, err := metric.ByName(string(buf[:nameLen]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrModel, err)
	}
	buf = buf[nameLen:]
	k := int(binary.LittleEndian.Uint32(buf))
	dim := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if k <= 0 || dim <= 0 || len(buf) != 4*k*dim {
		return nil, fmt.Errorf("%w: centroid block size mismatch", ErrModel)
	}
	m := &Model{Dist: dist, Centroids: make([]metric.Vector, k)}
	for j := range m.Centroids {
		c := make(metric.Vector, dim)
		for d := range c {
			c[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
		}
		m.Centroids[j] = c
	}
	return m, nil
}
