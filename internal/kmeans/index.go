package kmeans

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
)

// Config parametrizes an Index instance. The mirror of mindex.Config for
// the flat cell table of this family.
type Config struct {
	// NumCentroids is the number of cells K. Must match the client model
	// (and therefore the length of every entry's distance vector).
	NumCentroids int
	// Storage selects the bucket backend (the same backends the M-Index
	// uses).
	Storage mindex.StorageKind
	// DiskPath is the bucket directory for StorageDisk.
	DiskPath string
	// DiskCacheBytes bounds the DiskStore read-through bucket cache
	// (semantics of mindex.Config.DiskCacheBytes).
	DiskCacheBytes int
	// Fanout bounds how many cells an approximate search may visit — the
	// "M nearest centroids" of the routing family. 0 means unbounded: visit
	// cells in promise order until the candidate budget fills.
	Fanout int
}

func (c Config) validate() error {
	if c.NumCentroids <= 0 {
		return errors.New("kmeans: NumCentroids must be positive")
	}
	switch c.Storage {
	case mindex.StorageMemory:
	case mindex.StorageDisk:
		if c.DiskPath == "" {
			return errors.New("kmeans: StorageDisk requires DiskPath")
		}
	default:
		return fmt.Errorf("kmeans: unknown storage kind %d", c.Storage)
	}
	if c.Fanout < 0 {
		return fmt.Errorf("kmeans: Fanout must be non-negative, got %d", c.Fanout)
	}
	return nil
}

// cell is one centroid's bucket in a published snapshot. count pins the
// immutable view prefix (appends only extend a bucket, and this index never
// replaces or frees one); rmin/rmax bound the stored entries' transformed
// centroid distances — conservative covering-radius bounds that deletions
// widen but never invalidate.
type cell struct {
	bucket     mindex.BucketID
	count      int
	rmin, rmax float64
}

// state is one published immutable snapshot (the RCU discipline of
// mindex.Index, with a flat cell table instead of a tree).
type state struct {
	cells      []cell
	size, dead int
	tombstones map[uint64]struct{}
}

// Index is a thread-safe k-means cell index over mindex.Entries. Like the
// M-Index it operates purely on the pivot-space metadata the entries carry:
// the routing prefix (whose single element is the cell number) and the
// transformed centroid-distance vector. Searches run lock-free against the
// last published snapshot; mutators serialize on wmu and publish
// copy-on-write cell tables atomically.
type Index struct {
	cfg   Config
	store mindex.BucketStore

	st atomic.Pointer[state]

	wmu sync.Mutex
	// live maps every live entry ID to its cell — writer-private duplicate
	// bookkeeping, never read by searches.
	live map[uint64]int32

	ingestEntries atomic.Uint64
	ingestBytes   atomic.Uint64
}

// New creates an empty index with one bucket per centroid.
func New(cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var store mindex.BucketStore
	switch cfg.Storage {
	case mindex.StorageMemory:
		store = mindex.NewMemStore()
	case mindex.StorageDisk:
		ds, err := mindex.NewDiskStore(cfg.DiskPath)
		if err != nil {
			return nil, err
		}
		ds.SetCacheBudget(cfg.DiskCacheBytes)
		store = ds
	}
	cells := make([]cell, cfg.NumCentroids)
	for j := range cells {
		id, err := store.Create()
		if err != nil {
			store.Close()
			return nil, err
		}
		cells[j] = cell{bucket: id, rmin: math.Inf(1)}
	}
	ix := &Index{cfg: cfg, store: store, live: make(map[uint64]int32)}
	ix.st.Store(&state{cells: cells, tombstones: make(map[uint64]struct{})})
	return ix, nil
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Size returns the number of live entries.
func (ix *Index) Size() int { return ix.st.Load().size }

// Dead returns the number of tombstoned entries still stored.
func (ix *Index) Dead() int { return ix.st.Load().dead }

// Close releases the bucket storage.
func (ix *Index) Close() error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	return ix.store.Close()
}

// ErrDuplicateID reports an Insert whose entry ID is already stored (live
// or tombstoned — this index has no compaction to purge a dead twin).
var ErrDuplicateID = errors.New("kmeans: entry ID already indexed")

func (ix *Index) checkEntry(e *mindex.Entry) error {
	if len(e.Perm) < 1 {
		return errors.New("kmeans: entry has no routing prefix")
	}
	if e.Perm[0] < 0 || int(e.Perm[0]) >= ix.cfg.NumCentroids {
		return fmt.Errorf("kmeans: cell %d out of range [0,%d)", e.Perm[0], ix.cfg.NumCentroids)
	}
	if len(e.Dists) != ix.cfg.NumCentroids {
		return fmt.Errorf("kmeans: entry has %d centroid distances, want %d (the precise strategy is mandatory for this family)",
			len(e.Dists), ix.cfg.NumCentroids)
	}
	return nil
}

// Insert routes each entry to the cell its prefix names and publishes one
// new snapshot covering the whole batch. The batch is validated up front;
// a validation or duplicate failure rejects the batch before any append.
func (ix *Index) Insert(entries []mindex.Entry) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	st := ix.st.Load()
	seen := make(map[uint64]struct{}, len(entries))
	for i := range entries {
		e := &entries[i]
		if err := ix.checkEntry(e); err != nil {
			return err
		}
		if _, ok := ix.live[e.ID]; ok {
			return fmt.Errorf("%w: %d", ErrDuplicateID, e.ID)
		}
		if _, ok := st.tombstones[e.ID]; ok {
			return fmt.Errorf("%w: %d (tombstoned)", ErrDuplicateID, e.ID)
		}
		if _, ok := seen[e.ID]; ok {
			return fmt.Errorf("%w: %d (twice in batch)", ErrDuplicateID, e.ID)
		}
		seen[e.ID] = struct{}{}
	}
	cells := make([]cell, len(st.cells))
	copy(cells, st.cells)
	var bytes uint64
	for i := range entries {
		e := &entries[i]
		j := e.Perm[0]
		if err := ix.store.Append(cells[j].bucket, *e); err != nil {
			// Abandon the batch: the new cell counts are never published and
			// no ID was admitted to live (that happens only below, after
			// every append succeeded), so the partially appended entries stay
			// invisible forever and their IDs remain insertable. Their bucket
			// bytes leak until restart — the failure mode the M-Index also
			// accepts mid-batch.
			return err
		}
		c := &cells[j]
		c.count++
		d := e.Dists[j]
		if d < c.rmin {
			c.rmin = d
		}
		if d > c.rmax {
			c.rmax = d
		}
		bytes += uint64(mindex.EncodedEntrySize(*e))
	}
	for i := range entries {
		ix.live[entries[i].ID] = entries[i].Perm[0]
	}
	ix.ingestEntries.Add(uint64(len(entries)))
	ix.ingestBytes.Add(bytes)
	ix.st.Store(&state{
		cells:      cells,
		size:       st.size + len(entries),
		dead:       st.dead,
		tombstones: st.tombstones,
	})
	return nil
}

// Delete tombstones the referenced entries (matched by ID — the routing
// prefix in a reference is ignored, a flat cell table needs no tree
// address). Unknown or already-deleted IDs are skipped; the count of entries
// actually deleted is returned.
func (ix *Index) Delete(refs []mindex.Entry) (int, error) {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	st := ix.st.Load()
	deleted := 0
	var tombstones map[uint64]struct{}
	for i := range refs {
		id := refs[i].ID
		if _, ok := ix.live[id]; !ok {
			continue
		}
		if tombstones == nil {
			tombstones = make(map[uint64]struct{}, len(st.tombstones)+len(refs))
			for t := range st.tombstones {
				tombstones[t] = struct{}{}
			}
		}
		tombstones[id] = struct{}{}
		delete(ix.live, id)
		deleted++
	}
	if deleted == 0 {
		return 0, nil
	}
	ix.st.Store(&state{
		cells:      st.cells,
		size:       st.size - deleted,
		dead:       st.dead + deleted,
		tombstones: tombstones,
	})
	return deleted, nil
}

// cellView returns the snapshot's immutable prefix of cell j's bucket.
func (ix *Index) cellView(st *state, j int) ([]mindex.Entry, error) {
	c := &st.cells[j]
	if c.count == 0 {
		return nil, nil
	}
	v, err := ix.store.View(c.bucket)
	if err != nil {
		return nil, err
	}
	return v[:c.count], nil
}

// validateDists checks a query's transformed centroid-distance vector.
func (ix *Index) validateDists(qDists []float64) error {
	if len(qDists) != ix.cfg.NumCentroids {
		return fmt.Errorf("kmeans: query has %d centroid distances, want %d", len(qDists), ix.cfg.NumCentroids)
	}
	return nil
}

// RangeByDists evaluates the server side of a precise range query: cells
// whose covering-radius ball bound exceeds the radius are skipped whole,
// surviving entries are pivot-filtered with the triangle-inequality lower
// bound over all centroids. Both bounds stay conservative under the key's
// monotone transform (the radius arrives scaled by the Lipschitz constant),
// so no true result is ever dismissed; the client refines to exactness.
// Candidates are returned in (cell, insertion) order — fully deterministic.
func (ix *Index) RangeByDists(qDists []float64, r float64) ([]mindex.Entry, error) {
	if err := ix.validateDists(qDists); err != nil {
		return nil, err
	}
	if r < 0 {
		return nil, fmt.Errorf("kmeans: negative query radius %g", r)
	}
	st := ix.st.Load()
	var out []mindex.Entry
	for j := range st.cells {
		c := &st.cells[j]
		if c.count == 0 {
			continue
		}
		// Ball bounds on the cell: every stored o has
		// rmin ≤ T(d(o,c_j)) ≤ rmax, so T-space distance to q is at least
		// qDists[j]−rmax and rmin−qDists[j].
		if qDists[j]-c.rmax > r || c.rmin-qDists[j] > r {
			continue
		}
		entries, err := ix.cellView(st, j)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if _, gone := st.tombstones[e.ID]; gone {
				continue
			}
			if pivot.LowerBound(qDists, e.Dists) > r {
				continue
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// rankedCells returns cell indices ordered by ascending promise (the
// transformed query–centroid distance), ties broken by the smaller cell
// index — the flat-table analogue of the M-Index promise queue's
// deterministic (promise, prefix) order.
func rankedCells(qDists []float64) []int32 {
	order := make([]int32, len(qDists))
	for j := range order {
		order[j] = int32(j)
	}
	sort.Slice(order, func(a, b int) bool {
		if qDists[order[a]] != qDists[order[b]] {
			return qDists[order[a]] < qDists[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// ApproxRanked visits cells in promise order — at most Config.Fanout of
// them when bounded — and emits their live entries as RankedCandidates
// (promise: the cell's transformed centroid distance; prefix: the
// one-element cell path) until at least candSize have been emitted; the
// list is then trimmed to exactly candSize. The ordering is exactly what
// internal/merge expects, so a fan-out engine can merge these streams with
// M-Index shard streams' discipline unchanged.
func (ix *Index) ApproxRanked(qDists []float64, candSize int) ([]mindex.RankedCandidate, error) {
	if err := ix.validateDists(qDists); err != nil {
		return nil, err
	}
	if candSize <= 0 {
		return nil, fmt.Errorf("kmeans: candidate size must be positive, got %d", candSize)
	}
	st := ix.st.Load()
	out := make([]mindex.RankedCandidate, 0, candSize)
	visited := 0
	for _, j := range rankedCells(qDists) {
		if len(out) >= candSize {
			break
		}
		if ix.cfg.Fanout > 0 && visited >= ix.cfg.Fanout {
			break
		}
		visited++
		entries, err := ix.cellView(st, int(j))
		if err != nil {
			return nil, err
		}
		prefix := []int32{j}
		for _, e := range entries {
			if _, gone := st.tombstones[e.ID]; gone {
				continue
			}
			out = append(out, mindex.RankedCandidate{Entry: e, Promise: qDists[j], Prefix: prefix})
		}
	}
	if len(out) > candSize {
		out = out[:candSize]
	}
	return out, nil
}

// ApproxCandidates is ApproxRanked stripped to bare entries.
func (ix *Index) ApproxCandidates(qDists []float64, candSize int) ([]mindex.Entry, error) {
	rcs, err := ix.ApproxRanked(qDists, candSize)
	if err != nil {
		return nil, err
	}
	out := make([]mindex.Entry, len(rcs))
	for i := range rcs {
		out[i] = rcs[i].Entry
	}
	return out, nil
}

// FirstCellRanked returns the live entries of the single most promising
// non-empty cell together with its promise and one-element prefix — the
// analogue of the M-Index 1-cell restricted strategy. An empty index yields
// nil entries.
func (ix *Index) FirstCellRanked(qDists []float64) ([]mindex.Entry, float64, []int32, error) {
	if err := ix.validateDists(qDists); err != nil {
		return nil, 0, nil, err
	}
	st := ix.st.Load()
	for _, j := range rankedCells(qDists) {
		entries, err := ix.cellView(st, int(j))
		if err != nil {
			return nil, 0, nil, err
		}
		out := make([]mindex.Entry, 0, len(entries))
		for _, e := range entries {
			if _, gone := st.tombstones[e.ID]; gone {
				continue
			}
			out = append(out, e)
		}
		if len(out) > 0 {
			return out, qDists[j], []int32{j}, nil
		}
	}
	return nil, 0, nil, nil
}

// Stats summarizes the cell population, read from one snapshot.
type Stats struct {
	Cells       int
	EmptyCells  int
	Live        int
	Dead        int
	MaxCell     int
	TotalStored int
}

// Stats reports the cell-table shape. Lock-free, like every read.
func (ix *Index) Stats() Stats {
	st := ix.st.Load()
	s := Stats{Cells: len(st.cells), Live: st.size, Dead: st.dead}
	for j := range st.cells {
		n := st.cells[j].count
		s.TotalStored += n
		if n == 0 {
			s.EmptyCells++
		}
		if n > s.MaxCell {
			s.MaxCell = n
		}
	}
	return s
}

// IngestStats reports entries and encoded bytes accepted since the index
// opened (mirror of mindex.IngestStats, without a bulk-builder path).
func (ix *Index) IngestStats() (entries, bytes uint64) {
	return ix.ingestEntries.Load(), ix.ingestBytes.Load()
}

// CacheStats reports the disk store's read-through cache counters (ok is
// false for memory storage).
func (ix *Index) CacheStats() (hits, misses uint64, ok bool) {
	cs, ok := ix.store.(interface {
		CacheStats() (uint64, uint64, int)
	})
	if !ok {
		return 0, 0, false
	}
	hits, misses, _ = cs.CacheStats()
	return hits, misses, true
}
