package kmeans

import (
	"math"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
)

func TestTrainDeterministic(t *testing.T) {
	d := dataset.Clustered(3, 300, 8, 6, metric.L2{})
	cfg := TrainConfig{K: 6, Seed: 42, Dist: metric.L2{}}
	a, err := Train(cfg, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if a.K() != 6 || b.K() != 6 {
		t.Fatalf("K = %d/%d, want 6", a.K(), b.K())
	}
	for j := range a.Centroids {
		if !a.Centroids[j].Equal(b.Centroids[j]) {
			t.Fatalf("centroid %d differs between identical runs", j)
		}
	}
	c, err := Train(TrainConfig{K: 6, Seed: 43, Dist: metric.L2{}}, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a.Centroids {
		if !a.Centroids[j].Equal(c.Centroids[j]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical centroids")
	}
}

func TestTrainReducesDistortion(t *testing.T) {
	// Lloyd must beat assigning everything to a single random point: the mean
	// distance to the assigned centroid should sit well below the mean
	// pairwise distance scale of the collection.
	d := dataset.Clustered(5, 400, 12, 8, metric.L2{})
	m, err := Train(TrainConfig{K: 8, Seed: 1, Dist: metric.L2{}}, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	var toCentroid, toFirst float64
	for _, o := range d.Objects {
		_, dist := nearest(m.Dist, m.Centroids, o.Vec)
		toCentroid += dist
		toFirst += m.Dist.Dist(o.Vec, d.Objects[0].Vec)
	}
	if toCentroid >= toFirst/2 {
		t.Fatalf("training did not cluster: mean centroid dist %g vs mean dist to an arbitrary point %g",
			toCentroid/float64(len(d.Objects)), toFirst/float64(len(d.Objects)))
	}
}

func TestTrainSphericalCentroidsUnitNorm(t *testing.T) {
	d := dataset.Embed768(200)
	m, err := Train(TrainConfig{K: 5, Seed: 9, Dist: metric.Cosine{}}, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range m.Centroids {
		var sq float64
		for _, v := range c {
			sq += float64(v) * float64(v)
		}
		if norm := math.Sqrt(sq); math.Abs(norm-1) > 1e-4 {
			t.Fatalf("spherical centroid %d has norm %g", j, norm)
		}
	}
}

func TestTrainSampleCap(t *testing.T) {
	d := dataset.Clustered(7, 500, 6, 4, metric.L2{})
	cfg := TrainConfig{K: 4, Seed: 2, SampleCap: 100, Dist: metric.L2{}}
	a, err := Train(cfg, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Centroids {
		if !a.Centroids[j].Equal(b.Centroids[j]) {
			t.Fatalf("sampled training not deterministic at centroid %d", j)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	d := dataset.Clustered(1, 10, 4, 2, metric.L2{})
	if _, err := Train(TrainConfig{K: 2, Seed: 1}, d.Objects); err == nil {
		t.Fatal("nil distance accepted")
	}
	if _, err := Train(TrainConfig{K: 0, Seed: 1, Dist: metric.L2{}}, d.Objects); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Train(TrainConfig{K: 11, Seed: 1, Dist: metric.L2{}}, d.Objects); err == nil {
		t.Fatal("K > n accepted")
	}
	if _, err := Train(TrainConfig{K: 8, Seed: 1, SampleCap: 4, Dist: metric.L2{}}, d.Objects); err == nil {
		t.Fatal("K > sample cap accepted")
	}
}

func TestTrainDuplicatePointsReseed(t *testing.T) {
	// A collection of identical points exercises the total<=0 branch of
	// k-means++ and the empty-cluster reseed without crashing.
	objs := make([]metric.Object, 12)
	for i := range objs {
		objs[i] = metric.Object{ID: uint64(i), Vec: metric.Vector{1, 2, 3}}
	}
	m, err := Train(TrainConfig{K: 3, Seed: 4, Dist: metric.L2{}}, objs)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 {
		t.Fatalf("K = %d", m.K())
	}
}

func TestNearestTieBreaksToSmallerIndex(t *testing.T) {
	cents := []metric.Vector{{0, 1}, {1, 0}}
	j, _ := nearest(metric.L2{}, cents, metric.Vector{0, 0})
	if j != 0 {
		t.Fatalf("tie broke to %d, want 0", j)
	}
}

func TestPivotSetMatchesCentroids(t *testing.T) {
	d := dataset.Clustered(2, 60, 4, 3, metric.L2{})
	m, err := Train(TrainConfig{K: 3, Seed: 8, Dist: metric.L2{}}, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	ps := m.PivotSet()
	if ps.N() != 3 {
		t.Fatalf("pivot set has %d pivots", ps.N())
	}
	q := d.Objects[0].Vec
	dists := ps.Distances(q)
	for j := range m.Centroids {
		if want := m.Dist.Dist(q, m.Centroids[j]); dists[j] != want {
			t.Fatalf("pivot dist %d = %g, want %g", j, dists[j], want)
		}
	}
}

func TestModelCodecRoundTrip(t *testing.T) {
	d := dataset.Clustered(6, 80, 5, 4, metric.L2{})
	m, err := Train(TrainConfig{K: 4, Seed: 3, Dist: metric.L2{}}, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist.Name() != "L2" || got.K() != 4 {
		t.Fatalf("decoded %s/%d", got.Dist.Name(), got.K())
	}
	for j := range m.Centroids {
		if !m.Centroids[j].Equal(got.Centroids[j]) {
			t.Fatalf("centroid %d lost in round trip", j)
		}
	}
}

func TestModelCodecRejectsCorruption(t *testing.T) {
	d := dataset.Clustered(6, 40, 3, 2, metric.L2{})
	m, err := Train(TrainConfig{K: 2, Seed: 3, Dist: metric.L2{}}, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bad magic":   append([]byte("NOTMAGIC"), blob[8:]...),
		"bad version": append(append([]byte{}, blob[:8]...), append([]byte{9}, blob[9:]...)...),
		"truncated":   blob[:len(blob)-3],
		"trailing":    append(append([]byte{}, blob...), 0),
		"empty":       {},
	}
	for name, raw := range cases {
		if _, err := UnmarshalModel(raw); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
