package kmeans

import (
	"os"
	"path/filepath"
	"testing"

	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
)

func buildDisk(t *testing.T, d *dataset.Dataset, k int) (*Index, *Model, Config) {
	t.Helper()
	cfg := Config{NumCentroids: k, Storage: mindex.StorageDisk, DiskPath: filepath.Join(t.TempDir(), "cells")}
	m, err := Train(TrainConfig{K: k, Seed: 21, Dist: d.Dist}, d.Objects)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := m.PivotSet()
	entries := make([]mindex.Entry, len(d.Objects))
	for i, o := range d.Objects {
		j, _ := nearest(m.Dist, m.Centroids, o.Vec)
		entries[i] = mindex.Entry{ID: o.ID, Perm: []int32{int32(j)}, Dists: ps.Distances(o.Vec), Vec: o.Vec.Clone()}
	}
	if err := ix.Insert(entries); err != nil {
		t.Fatal(err)
	}
	return ix, m, cfg
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := dataset.Clustered(31, 180, 6, 4, metric.L2{})
	ix, m, cfg := buildDisk(t, d, 4)
	if n, err := ix.Delete([]mindex.Entry{{ID: 3}, {ID: 44}}); err != nil || n != 2 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	snap := filepath.Join(filepath.Dir(cfg.DiskPath), "kmeans.snap")
	if err := ix.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	ps := m.PivotSet()
	qDists := ps.Distances(d.Objects[9].Vec)
	wantRange, err := ix.RangeByDists(qDists, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantApprox, err := ix.ApproxRanked(qDists, 60)
	if err != nil {
		t.Fatal(err)
	}
	wantStats := ix.Stats()
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if s := got.Stats(); s != wantStats {
		t.Fatalf("stats after restore = %+v, want %+v", s, wantStats)
	}
	gotRange, err := got.RangeByDists(qDists, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRange) != len(wantRange) {
		t.Fatalf("range returned %d entries after restore, want %d", len(gotRange), len(wantRange))
	}
	for i := range wantRange {
		if gotRange[i].ID != wantRange[i].ID {
			t.Fatalf("range order diverged at %d", i)
		}
	}
	gotApprox, err := got.ApproxRanked(qDists, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantApprox {
		if gotApprox[i].Entry.ID != wantApprox[i].Entry.ID {
			t.Fatalf("approx order diverged at %d", i)
		}
	}

	// The restored index keeps working: tombstoned IDs stay rejected, fresh
	// inserts and deletes proceed.
	if err := got.Insert([]mindex.Entry{{ID: 3, Perm: []int32{0}, Dists: make([]float64, 4)}}); err == nil {
		t.Fatal("tombstoned ID re-accepted after restore")
	}
	if err := got.Insert([]mindex.Entry{{ID: 100000, Perm: []int32{1}, Dists: make([]float64, 4)}}); err != nil {
		t.Fatal(err)
	}
	if n, err := got.Delete([]mindex.Entry{{ID: 100000}}); err != nil || n != 1 {
		t.Fatalf("post-restore delete = %d, %v", n, err)
	}
}

func TestSnapshotRequiresDisk(t *testing.T) {
	ix, err := New(Config{NumCentroids: 2, Storage: mindex.StorageMemory})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.SaveSnapshot(filepath.Join(t.TempDir(), "x.snap")); err == nil {
		t.Fatal("memory index snapshotted")
	}
	if _, err := LoadSnapshot(Config{NumCentroids: 2, Storage: mindex.StorageMemory}, "nope"); err == nil {
		t.Fatal("memory config loaded a snapshot")
	}
}

func TestSnapshotRejectsMismatchAndCorruption(t *testing.T) {
	d := dataset.Clustered(32, 90, 5, 3, metric.L2{})
	ix, _, cfg := buildDisk(t, d, 3)
	snap := filepath.Join(filepath.Dir(cfg.DiskPath), "kmeans.snap")
	if err := ix.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	wrongK := cfg
	wrongK.NumCentroids = 4
	if _, err := LoadSnapshot(wrongK, snap); err == nil {
		t.Fatal("centroid-count mismatch accepted")
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func([]byte) []byte{
		"bad magic":  func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad ver":    func(b []byte) []byte { b[8] = 9; return b },
		"truncated":  func(b []byte) []byte { return b[:len(b)-4] },
		"trailing":   func(b []byte) []byte { return append(b, 0) },
		"size lie":   func(b []byte) []byte { b[13]++; return b },      // size u64 at offset 13
		"dead bloat": func(b []byte) []byte { b[29] = 0xff; return b }, // deadCount at offset 29
	} {
		mutated := mut(append([]byte{}, raw...))
		bad := snap + ".bad"
		if err := os.WriteFile(bad, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshot(cfg, bad); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
