package kmeans

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// synthCal builds a deterministic calibration profile over k=5 neighbors:
// queries below the d1 midpoint need wide candidate sets, queries above it
// narrow ones — a clean two-regime signal for the fit to recover.
func synthCal(n, k int) []CalSample {
	out := make([]CalSample, n)
	for i := range out {
		d1 := float64(i) * 10 / float64(n-1)
		base := 20
		if d1 < 5 {
			base = 200
		}
		need := make([]int, k)
		for j := range need {
			need[j] = base + 7*j + i%5
		}
		out[i] = CalSample{D1: d1, Need: need}
	}
	return out
}

func TestFitPredictorValidation(t *testing.T) {
	good := synthCal(40, 5)
	cases := []struct {
		name    string
		samples []CalSample
		k       int
		levels  []float64
		bins    int
	}{
		{"no samples", nil, 5, []float64{0.9}, 4},
		{"bad k", good, 0, []float64{0.9}, 4},
		{"bad bins", good, 5, []float64{0.9}, 0},
		{"no levels", good, 5, nil, 4},
		{"level zero", good, 5, []float64{0}, 4},
		{"level one", good, 5, []float64{1}, 4},
		{"levels not ascending", good, 5, []float64{0.9, 0.8}, 4},
		{"need length mismatch", []CalSample{{D1: 1, Need: []int{3}}}, 5, []float64{0.9}, 4},
		{"no finite needs", []CalSample{{D1: 1, Need: []int{math.MaxInt, math.MaxInt}}}, 2, []float64{0.9}, 4},
	}
	for _, tc := range cases {
		if _, err := FitPredictor(tc.samples, tc.k, tc.levels, tc.bins); err == nil {
			t.Errorf("%s: want error, got none", tc.name)
		}
	}
}

func TestFitPredictorShape(t *testing.T) {
	samples := synthCal(60, 5)
	levels := []float64{0.6, 0.8, 0.99}
	p, err := FitPredictor(samples, 5, levels, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 5 || len(p.Levels) != 3 || len(p.Edges) != 3 || len(p.Cand) != 3 {
		t.Fatalf("unexpected shape: k=%d levels=%d edges=%d rows=%d", p.K, len(p.Levels), len(p.Edges), len(p.Cand))
	}
	for b := 1; b < len(p.Edges); b++ {
		if p.Edges[b] < p.Edges[b-1] {
			t.Fatalf("edges not ascending: %v", p.Edges)
		}
	}
	for li, row := range p.Cand {
		if len(row) != 4 {
			t.Fatalf("level %d: %d bins, want 4", li, len(row))
		}
		for b, c := range row {
			if c < 5 {
				t.Fatalf("level %d bin %d: candidate count %d below k", li, b, c)
			}
			if li > 0 && c < p.Cand[li-1][b] {
				t.Fatalf("bin %d shrinks from level %g to %g: %d -> %d",
					b, p.Levels[li-1], p.Levels[li], p.Cand[li-1][b], c)
			}
		}
	}
}

func TestFitPredictorHitsTargetOnCalibration(t *testing.T) {
	const k = 5
	samples := synthCal(80, k)
	levels := []float64{0.7, 0.9}
	p, err := FitPredictor(samples, k, levels, 4)
	if err != nil {
		t.Fatal(err)
	}
	for li, r := range levels {
		var recall float64
		for _, s := range samples {
			c := p.CandSize(r, s.D1)
			covered := 0
			for j := k - 1; j >= 0; j-- {
				if s.Need[j] <= c {
					covered = j + 1
					break
				}
			}
			recall += float64(covered) / float64(k)
		}
		recall /= float64(len(samples))
		if recall < r {
			t.Errorf("level %g: calibration recall %.3f below target (row %v)", r, recall, p.Cand[li])
		}
	}
}

func TestFitPredictorAdaptsAcrossBins(t *testing.T) {
	// The two-regime profile needs ~200 candidates below the midpoint and
	// ~20 above it; a fit that cannot allocate per bin would spend the same
	// everywhere.
	p, err := FitPredictor(synthCal(80, 5), 5, []float64{0.9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	row := p.Cand[0]
	if row[0] <= row[len(row)-1] {
		t.Fatalf("expensive low-d1 bin should out-spend the cheap high-d1 bin: %v", row)
	}
}

func TestFitPredictorClampsBinsToSamples(t *testing.T) {
	p, err := FitPredictor(synthCal(3, 5), 5, []float64{0.9}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Edges) != 2 {
		t.Fatalf("bins should clamp to the sample count: %d edges for 3 samples", len(p.Edges))
	}
}

func TestPredictorCandSizeLookup(t *testing.T) {
	p := &Predictor{
		K:      5,
		Levels: []float64{0.8, 0.9},
		Edges:  []float64{2, 4},
		Cand:   [][]int{{30, 20, 10}, {60, 40, 15}},
	}
	cases := []struct {
		target, d1 float64
		want       int
	}{
		{0.8, 1, 30},   // exact level, first bin
		{0.8, 2, 30},   // on the edge -> lower bin
		{0.8, 3, 20},   // middle bin
		{0.8, 9, 10},   // beyond last edge -> last bin
		{0.85, 1, 60},  // between levels -> next stricter
		{0.9, 3, 40},   // strictest level
		{0.99, 9, 15},  // above all levels -> last level
		{0.5, 2.5, 20}, // below all levels -> first level
	}
	for _, tc := range cases {
		if got := p.CandSize(tc.target, tc.d1); got != tc.want {
			t.Errorf("CandSize(%g, %g) = %d, want %d", tc.target, tc.d1, got, tc.want)
		}
	}
}

func TestPredictorCodecRoundTrip(t *testing.T) {
	p, err := FitPredictor(synthCal(50, 5), 5, []float64{0.7, 0.9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalPredictor(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip changed the predictor:\n%+v\n%+v", p, q)
	}
}

func TestPredictorCodecRejectsCorruption(t *testing.T) {
	p, err := FitPredictor(synthCal(50, 5), 5, []float64{0.9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func([]byte) []byte) []byte {
		b := append([]byte(nil), buf...)
		return f(b)
	}
	cases := map[string][]byte{
		"bad magic":    mutate(func(b []byte) []byte { b[0] ^= 0xFF; return b }),
		"bad version":  mutate(func(b []byte) []byte { b[8] = 9; return b }),
		"truncated":    buf[:len(buf)-3],
		"trailing":     append(append([]byte(nil), buf...), 0xAB),
		"empty":        nil,
		"short header": buf[:10],
	}
	for name, b := range cases {
		if _, err := UnmarshalPredictor(b); !errors.Is(err, ErrPredictor) {
			t.Errorf("%s: want ErrPredictor, got %v", name, err)
		}
	}

	if _, err := (&Predictor{K: 0}).Marshal(); !errors.Is(err, ErrPredictor) {
		t.Errorf("marshal of zero predictor: want ErrPredictor, got %v", err)
	}
	ragged := &Predictor{K: 5, Levels: []float64{0.9}, Edges: []float64{1}, Cand: [][]int{{10, 20, 30}}}
	if _, err := ragged.Marshal(); !errors.Is(err, ErrPredictor) {
		t.Errorf("marshal of ragged table: want ErrPredictor, got %v", err)
	}
}
