package kmeans

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// The learned candidate-size predictor. The global CandSize constant pays
// the same candidate budget for every query, but how many candidates a
// query actually needs varies with where it lands: a query deep inside a
// tight cell finds its neighbors in the first few candidates, one in the
// no-man's-land between centroids needs a far wider net. The distance to
// the nearest centroid (the query's first routing feature, already computed
// for free on every search) separates the two regimes, so a small monotone
// model over that single feature recovers most of the variance at zero
// query-time cost.
//
// The model is a quantile-binned lookup table: FitPredictor splits the
// calibration queries into equal-mass bins by their nearest-centroid
// distance d1 and allocates each bin a candidate budget by greedy marginal
// gain — every bin starts at the floor k, and budget increments go to
// whichever bin buys the most additional neighbor coverage per candidate
// spent, until the calibration sample's mean recall clears the target (the
// water-filling solution of the budgeted-recall problem). The table is
// monotone in the target recall by construction (a stricter level resumes
// the same allocation and only adds budget) but deliberately free-form
// along d1: real workloads are not monotone there — a query inside a dense
// cell pays for bucket-order dilution while a background query far from
// every centroid pays for neighbors scattered across near-tied cells, so
// the expensive queries sit at both ends of the d1 range with the cheap
// ones in between.

// CalSample is one calibration query's ground-truth profile: Need[j] is the
// minimal candidate-set size whose promise-ranked candidate stream covers
// j+1 of the query's true k nearest neighbors (math.MaxInt when the stream
// never covers that many — possible under a Fanout bound). Need is
// non-decreasing in j.
type CalSample struct {
	D1   float64
	Need []int
}

// Predictor maps (target recall, nearest-centroid distance) to a candidate
// count. Fit one with FitPredictor; resolve queries with CandSize. The zero
// value is not usable.
type Predictor struct {
	// K is the neighbor count the predictor was calibrated for.
	K int
	// Levels are the fitted target recalls, ascending.
	Levels []float64
	// Edges are the d1 bin upper edges (len = bins-1; the last bin is
	// unbounded above).
	Edges []float64
	// Cand is the candidate-count table, [level][bin], non-decreasing along
	// the level axis and free-form along the bin axis.
	Cand [][]int
}

// FitPredictor fits the binned model described above. samples is the
// calibration profile (see CalSample and, for producing one, the Calibrate
// helper of the core kmeans backend), k the neighbor count the profiles
// were built for, levels the target recalls to fit (each in (0,1),
// strictly ascending), bins the number of equal-mass d1 bins.
func FitPredictor(samples []CalSample, k int, levels []float64, bins int) (*Predictor, error) {
	if len(samples) == 0 {
		return nil, errors.New("kmeans: no calibration samples")
	}
	if k <= 0 {
		return nil, fmt.Errorf("kmeans: predictor k must be positive, got %d", k)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("kmeans: bins must be positive, got %d", bins)
	}
	if bins > len(samples) {
		bins = len(samples)
	}
	if len(levels) == 0 {
		return nil, errors.New("kmeans: no target recall levels")
	}
	for i, r := range levels {
		if r <= 0 || r >= 1 {
			return nil, fmt.Errorf("kmeans: target recall %g outside (0, 1)", r)
		}
		if i > 0 && r <= levels[i-1] {
			return nil, errors.New("kmeans: target recall levels must be strictly ascending")
		}
	}
	maxFinite := 0
	for _, s := range samples {
		if len(s.Need) != k {
			return nil, fmt.Errorf("kmeans: calibration sample has %d need entries, want k=%d", len(s.Need), k)
		}
		for _, n := range s.Need {
			if n != math.MaxInt && n > maxFinite {
				maxFinite = n
			}
		}
	}
	if maxFinite == 0 {
		return nil, errors.New("kmeans: calibration samples carry no finite candidate counts")
	}

	// Equal-mass bins on d1.
	byD1 := make([]int, len(samples))
	for i := range byD1 {
		byD1[i] = i
	}
	sort.Slice(byD1, func(a, b int) bool { return samples[byD1[a]].D1 < samples[byD1[b]].D1 })
	edges := make([]float64, bins-1)
	for b := range edges {
		edges[b] = samples[byD1[(b+1)*len(samples)/bins-1]].D1
	}
	binOf := func(d1 float64) int {
		for b, e := range edges {
			if d1 <= e {
				return b
			}
		}
		return bins - 1
	}
	binned := make([][]int, bins) // sample indices per bin
	for i, s := range samples {
		b := binOf(s.D1)
		binned[b] = append(binned[b], i)
	}

	p := &Predictor{
		K:      k,
		Levels: append([]float64(nil), levels...),
		Edges:  edges,
		Cand:   make([][]int, len(levels)),
	}
	// Per-bin coverage breakpoints: every finite Need value of every sample
	// in the bin (clamped below at k — a k-NN candidate set below k is never
	// useful), flattened and sorted. The number of values ≤ c is exactly the
	// summed neighbor coverage of the bin's queries at budget c, so the
	// whole calibration objective reduces to rank lookups in these arrays.
	// MaxInt needs (coverage unreachable under the deployed Fanout bound)
	// carry no breakpoint: no budget buys them.
	flat := make([][]int, bins)
	for b, idxs := range binned {
		for _, i := range idxs {
			for _, n := range samples[i].Need {
				if n == math.MaxInt {
					continue
				}
				flat[b] = append(flat[b], max(n, k))
			}
		}
		sort.Ints(flat[b])
	}
	coveredAt := func(b, c int) int { return sort.SearchInts(flat[b], c+1) }
	total := float64(len(samples) * k)

	// Greedy marginal allocation: start every bin at the floor k and
	// repeatedly buy the jump with the best coverage gain per candidate
	// spent (candidate spend weighted by the bin's query mass), until the
	// level's bar is met. Levels continue the same allocation — a stricter
	// target only ever adds budget, so the table is monotone across levels
	// by construction.
	cand := make([]int, bins)
	cov := 0
	for b := range cand {
		cand[b] = k
		cov += coveredAt(b, k)
	}
	for li, r := range levels {
		// The bar pads the target by one standard error of the mean recall,
		// so an allocation that barely clears it in-sample still clears the
		// target out of sample. The pad is capped at two recall points: past
		// that the fit is buying overshoot, not safety.
		bar := r + min(math.Sqrt(r*(1-r)/float64(len(samples))), 0.02)
		for float64(cov)/total < bar {
			bestB, bestV, bestGain := -1, 0, 0
			bestRatio := -1.0
			for b := range cand {
				nb := len(binned[b])
				if nb == 0 {
					continue
				}
				base := coveredAt(b, cand[b])
				for idx := base; idx < len(flat[b]); {
					v := flat[b][idx]
					j := idx
					for j < len(flat[b]) && flat[b][j] == v {
						j++
					}
					if v > cand[b] {
						ratio := float64(j-base) / (float64(nb) * float64(v-cand[b]))
						if ratio > bestRatio {
							bestRatio, bestB, bestV, bestGain = ratio, b, v, j-base
						}
					}
					idx = j
				}
			}
			if bestB < 0 {
				break // every reachable neighbor is already covered
			}
			cand[bestB] = bestV
			cov += bestGain
		}
		row := append([]int(nil), cand...)
		// Bins with no calibration mass inherit the nearest fitted neighbor.
		for b := 1; b < bins; b++ {
			if len(binned[b]) == 0 {
				row[b] = row[b-1]
			}
		}
		for b := bins - 2; b >= 0; b-- {
			if len(binned[b]) == 0 && row[b] < row[b+1] {
				row[b] = row[b+1]
			}
		}
		p.Cand[li] = row
	}
	return p, nil
}

// CandSize resolves the candidate count for a query with nearest-centroid
// distance d1 and the given target recall. Targets between fitted levels
// round up to the next stricter level (conservative); targets above the
// strictest fitted level use it.
func (p *Predictor) CandSize(targetRecall, d1 float64) int {
	li := len(p.Levels) - 1
	for i, r := range p.Levels {
		if r >= targetRecall-1e-9 {
			li = i
			break
		}
	}
	b := len(p.Edges)
	for i, e := range p.Edges {
		if d1 <= e {
			b = i
			break
		}
	}
	return p.Cand[li][b]
}

// Predictor codec: client-side state, persisted next to the model.
//
//	magic   [8]byte "SIMKPRED"
//	version uint8 (1)
//	k       uint32
//	levels  uint16 | float64 × levels
//	edges   uint16 | float64 × edges
//	cand    uint32 × (levels × (edges+1))
var predictorMagic = [8]byte{'S', 'I', 'M', 'K', 'P', 'R', 'E', 'D'}

// ErrPredictor reports a malformed predictor blob.
var ErrPredictor = errors.New("kmeans: invalid predictor")

// Marshal encodes the predictor.
func (p *Predictor) Marshal() ([]byte, error) {
	if p.K <= 0 || len(p.Levels) == 0 || len(p.Cand) != len(p.Levels) {
		return nil, fmt.Errorf("%w: inconsistent shape", ErrPredictor)
	}
	bins := len(p.Edges) + 1
	buf := make([]byte, 0, 8+1+4+2+8*len(p.Levels)+2+8*len(p.Edges)+4*len(p.Levels)*bins)
	buf = append(buf, predictorMagic[:]...)
	buf = append(buf, 1) // version
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.K))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Levels)))
	for _, r := range p.Levels {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Edges)))
	for _, e := range p.Edges {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e))
	}
	for _, row := range p.Cand {
		if len(row) != bins {
			return nil, fmt.Errorf("%w: ragged candidate table", ErrPredictor)
		}
		for _, c := range row {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
		}
	}
	return buf, nil
}

// UnmarshalPredictor decodes a predictor produced by Marshal.
func UnmarshalPredictor(buf []byte) (*Predictor, error) {
	if len(buf) < 8+1+4+2 || [8]byte(buf[:8]) != predictorMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrPredictor)
	}
	buf = buf[8:]
	if buf[0] != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrPredictor, buf[0])
	}
	buf = buf[1:]
	p := &Predictor{K: int(binary.LittleEndian.Uint32(buf))}
	buf = buf[4:]
	nLevels := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if nLevels == 0 || len(buf) < 8*nLevels+2 {
		return nil, fmt.Errorf("%w: truncated levels", ErrPredictor)
	}
	p.Levels = make([]float64, nLevels)
	for i := range p.Levels {
		p.Levels[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	nEdges := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < 8*nEdges {
		return nil, fmt.Errorf("%w: truncated edges", ErrPredictor)
	}
	p.Edges = make([]float64, nEdges)
	for i := range p.Edges {
		p.Edges[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	bins := nEdges + 1
	if p.K <= 0 || len(buf) != 4*nLevels*bins {
		return nil, fmt.Errorf("%w: candidate table size mismatch", ErrPredictor)
	}
	p.Cand = make([][]int, nLevels)
	for li := range p.Cand {
		row := make([]int, bins)
		for b := range row {
			row[b] = int(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
		}
		p.Cand[li] = row
	}
	return p, nil
}
