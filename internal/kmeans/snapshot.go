package kmeans

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"simcloud/internal/mindex"
)

// Snapshot support: a disk-backed cell index persists its metadata to a
// small file and reattaches to its bucket directory after a restart, the
// direct analogue of the M-Index snapshot (the centroids themselves are
// client-side key material and live in the model codec, never here).
//
// Snapshot file format (little endian):
//
//	magic    [8]byte "SIMKSNAP"
//	version  uint8 (1)
//	numCentroids uint32
//	size     uint64  (live entries)
//	nextBkt  uint64  (DiskStore allocation cursor)
//	deadCount uint64 | tombstoned IDs uint64 × deadCount (ascending)
//	per cell: bucket uint64 | count uint32 | rmin, rmax float64

var snapMagic = [8]byte{'S', 'I', 'M', 'K', 'S', 'N', 'A', 'P'}

// ErrSnapshot reports a malformed or mismatched snapshot file.
var ErrSnapshot = errors.New("kmeans: invalid snapshot")

// SaveSnapshot writes the index metadata to path. Only disk-backed indexes
// can be snapshotted. The file is written to a temporary sibling, synced,
// and renamed into place.
func (ix *Index) SaveSnapshot(path string) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	st := ix.st.Load()
	ds, ok := ix.store.(*mindex.DiskStore)
	if !ok {
		return errors.New("kmeans: only disk-backed indexes support snapshots")
	}
	if err := ds.Sync(); err != nil {
		return err
	}
	buf := make([]byte, 0, 64+8*len(st.tombstones)+28*len(st.cells))
	buf = append(buf, snapMagic[:]...)
	buf = append(buf, 1) // version
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.cfg.NumCentroids))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.size))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ds.NextID()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(st.tombstones)))
	dead := make([]uint64, 0, len(st.tombstones))
	for id := range st.tombstones {
		dead = append(dead, id)
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	for _, id := range dead {
		buf = binary.LittleEndian.AppendUint64(buf, id)
	}
	for j := range st.cells {
		c := &st.cells[j]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.bucket))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.count))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.rmin))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.rmax))
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		syncErr := dir.Sync()
		dir.Close()
		return syncErr
	}
	return nil
}

// LoadSnapshot reopens a disk-backed cell index from its snapshot file and
// bucket directory. cfg must match the snapshotted centroid count and carry
// the DiskPath. The writer-private live-ID map is rebuilt eagerly by walking
// every bucket, so the first post-restore mutation pays no hidden rebuild.
func LoadSnapshot(cfg Config, path string) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Storage != mindex.StorageDisk {
		return nil, errors.New("kmeans: snapshots require disk storage")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &snapReader{buf: raw}
	var magic [8]byte
	copy(magic[:], r.take(8))
	if magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	if v := r.u8(); v != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshot, v)
	}
	numCentroids := int(r.u32())
	size := int(r.u64())
	next := mindex.BucketID(r.u64())
	deadCount := int(r.u64())
	if r.err != nil || deadCount < 0 || deadCount > len(r.buf)/8 {
		return nil, fmt.Errorf("%w: implausible tombstone count", ErrSnapshot)
	}
	tombstones := make(map[uint64]struct{}, deadCount)
	for range deadCount {
		tombstones[r.u64()] = struct{}{}
	}
	if len(tombstones) != deadCount {
		return nil, fmt.Errorf("%w: duplicate tombstone IDs", ErrSnapshot)
	}
	if numCentroids != cfg.NumCentroids {
		return nil, fmt.Errorf("%w: snapshot has %d centroids, config %d", ErrSnapshot, numCentroids, cfg.NumCentroids)
	}
	cells := make([]cell, numCentroids)
	counts := make(map[mindex.BucketID]int, numCentroids)
	total := 0
	for j := range cells {
		c := &cells[j]
		c.bucket = mindex.BucketID(r.u64())
		c.count = int(r.u32())
		c.rmin = r.f64()
		c.rmax = r.f64()
		if _, dup := counts[c.bucket]; dup {
			return nil, fmt.Errorf("%w: bucket %d used by two cells", ErrSnapshot, c.bucket)
		}
		counts[c.bucket] = c.count
		total += c.count
	}
	if r.err != nil || len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: truncated or trailing bytes", ErrSnapshot)
	}
	if total != size+deadCount {
		return nil, fmt.Errorf("%w: entry counts disagree (cells store %d, header says %d live + %d dead)",
			ErrSnapshot, total, size, deadCount)
	}
	store, err := mindex.ReopenDiskStore(cfg.DiskPath, counts, next)
	if err != nil {
		return nil, err
	}
	store.SetCacheBudget(cfg.DiskCacheBytes)
	ix := &Index{cfg: cfg, store: store, live: make(map[uint64]int32, size)}
	for j := range cells {
		if cells[j].count == 0 {
			continue
		}
		entries, err := store.View(cells[j].bucket)
		if err != nil {
			store.Close()
			return nil, err
		}
		if len(entries) != cells[j].count {
			store.Close()
			return nil, fmt.Errorf("%w: bucket %d holds %d entries, snapshot says %d",
				ErrSnapshot, cells[j].bucket, len(entries), cells[j].count)
		}
		for i := range entries {
			if _, gone := tombstones[entries[i].ID]; gone {
				continue
			}
			if _, dup := ix.live[entries[i].ID]; dup {
				store.Close()
				return nil, fmt.Errorf("%w: duplicate live ID %d", ErrSnapshot, entries[i].ID)
			}
			ix.live[entries[i].ID] = int32(j)
		}
	}
	if len(ix.live) != size {
		store.Close()
		return nil, fmt.Errorf("%w: %d live entries found, header says %d", ErrSnapshot, len(ix.live), size)
	}
	ix.st.Store(&state{cells: cells, size: size, dead: deadCount, tombstones: tombstones})
	return ix, nil
}

type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.err = ErrSnapshot
		return make([]byte, n)
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *snapReader) u8() uint8   { return r.take(1)[0] }
func (r *snapReader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *snapReader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *snapReader) f64() float64 {
	return math.Float64frombits(r.u64())
}
