package baseline

import (
	"fmt"
	"net"
	"sort"
	"time"

	"simcloud/internal/core"
	"simcloud/internal/metric"
	"simcloud/internal/secret"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// TrivialClient implements the strawman of Section 3: every search downloads
// the complete encrypted collection, decrypts it, and scans. Perfect privacy
// — the server learns nothing beyond the collection size — but the
// communication cost is the whole data set per query, which is why "it
// cannot be used in real applications".
//
// It runs against the encrypted-deployment server: the collection is the
// same encrypted M-Index store, fetched via MsgDownloadAll.
type TrivialClient struct {
	conn *wire.CountingConn
	key  *secret.Key
}

// DialTrivial connects a trivial client to the encrypted server at addr.
func DialTrivial(addr string, key *secret.Key) (*TrivialClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TrivialClient{conn: wire.NewCountingConn(conn), key: key}, nil
}

// Close releases the connection.
func (c *TrivialClient) Close() error { return c.conn.Close() }

// download fetches and decrypts the full collection.
func (c *TrivialClient) download(costs *stats.Costs) ([]metric.Object, error) {
	sentBefore, recvBefore := c.conn.BytesWritten(), c.conn.BytesRead()
	ioStart := time.Now()
	if err := wire.WriteFrame(c.conn, wire.MsgDownloadAll, nil); err != nil {
		return nil, err
	}
	respType, resp, err := wire.ReadFrame(c.conn)
	costs.CommTime += time.Since(ioStart)
	costs.BytesSent += c.conn.BytesWritten() - sentBefore
	costs.BytesReceived += c.conn.BytesRead() - recvBefore
	costs.RoundTrips++
	if err != nil {
		return nil, err
	}
	if respType == wire.MsgError {
		m, derr := wire.DecodeErrorResp(resp)
		if derr != nil {
			return nil, derr
		}
		return nil, &wire.RemoteError{Msg: m.Msg}
	}
	if respType != wire.MsgCandidates {
		return nil, fmt.Errorf("baseline: unexpected download response %v", respType)
	}
	m, err := wire.DecodeCandidatesResp(resp)
	if err != nil {
		return nil, err
	}
	creditServer(costs, m.ServerNanos)
	objs := make([]metric.Object, 0, len(m.Entries))
	for _, e := range m.Entries {
		decStart := time.Now()
		o, err := c.key.DecryptObject(e.Payload)
		costs.DecryptTime += time.Since(decStart)
		if err != nil {
			return nil, fmt.Errorf("baseline: decrypting object %d: %w", e.ID, err)
		}
		objs = append(objs, o)
	}
	costs.Candidates += int64(len(m.Entries))
	return objs, nil
}

// KNN downloads everything and scans for the k nearest neighbors.
func (c *TrivialClient) KNN(q metric.Vector, dist metric.Distance, k int) ([]core.Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if k <= 0 {
		return nil, costs, fmt.Errorf("baseline: k must be positive, got %d", k)
	}
	objs, err := c.download(&costs)
	if err != nil {
		return nil, costs, err
	}
	results := make([]core.Result, 0, len(objs))
	distStart := time.Now()
	for _, o := range objs {
		results = append(results, core.Result{ID: o.ID, Dist: dist.Dist(q, o.Vec), Object: o})
	}
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(len(objs))
	sort.Slice(results, func(i, j int) bool { return results[i].Dist < results[j].Dist })
	if len(results) > k {
		results = results[:k]
	}
	finishCosts(&costs, start)
	return results, costs, nil
}

// Range downloads everything and scans for objects within radius r.
func (c *TrivialClient) Range(q metric.Vector, dist metric.Distance, r float64) ([]core.Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	objs, err := c.download(&costs)
	if err != nil {
		return nil, costs, err
	}
	var results []core.Result
	distStart := time.Now()
	for _, o := range objs {
		if d := dist.Dist(q, o.Vec); d <= r {
			results = append(results, core.Result{ID: o.ID, Dist: d, Object: o})
		}
	}
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(len(objs))
	sort.Slice(results, func(i, j int) bool { return results[i].Dist < results[j].Dist })
	finishCosts(&costs, start)
	return results, costs, nil
}
