package baseline

import (
	"math/rand/v2"
	"sort"
	"testing"

	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/server"
)

// testEnv is a running encrypted-deployment server plus the shared key and
// a data set — the substrate all baselines run against.
type testEnv struct {
	addr string
	key  *secret.Key
	ds   *dataset.Dataset
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	ds := dataset.Clustered(77, 600, 5, 6, metric.L2{})
	rng := rand.New(rand.NewPCG(77, 1))
	pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, 8)
	key, err := secret.Generate(pv, secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewEncrypted(mindex.Config{
		NumPivots: 8, MaxLevel: 3, BucketCapacity: 30,
		Storage: mindex.StorageMemory, Ranking: mindex.RankFootrule,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &testEnv{addr: srv.Addr(), key: key, ds: ds}
}

func bruteKNN(ds *dataset.Dataset, q metric.Vector, k int) []core.Result {
	out := make([]core.Result, 0, len(ds.Objects))
	for _, o := range ds.Objects {
		out = append(out, core.Result{ID: o.ID, Dist: ds.Dist.Dist(q, o.Vec), Object: o})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestEHINodeCodecRoundTrip(t *testing.T) {
	leaf := &ehiNode{Leaf: true, Objects: []metric.Object{
		{ID: 1, Vec: metric.Vector{1, 2}}, {ID: 2, Vec: metric.Vector{3, 4}},
	}}
	got, err := decodeEHINode(encodeEHINode(leaf))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Leaf || len(got.Objects) != 2 || got.Objects[1].ID != 2 {
		t.Fatalf("leaf round trip: %+v", got)
	}
	inner := &ehiNode{Routing: []ehiRouting{
		{Center: metric.Vector{1}, Radius: 2.5, Child: 7},
	}}
	got, err = decodeEHINode(encodeEHINode(inner))
	if err != nil {
		t.Fatal(err)
	}
	if got.Leaf || len(got.Routing) != 1 || got.Routing[0].Child != 7 || got.Routing[0].Radius != 2.5 {
		t.Fatalf("inner round trip: %+v", got)
	}
	if _, err := decodeEHINode([]byte{1, 2}); err == nil {
		t.Fatal("garbage node accepted")
	}
}

func TestEHIBuildValidation(t *testing.T) {
	env := newTestEnv(t)
	rng := rand.New(rand.NewPCG(1, 1))
	if _, _, err := EHIBuild(rng, env.ds.Dist, env.ds.Objects, env.key, 1, 10); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	if _, _, err := EHIBuild(rng, env.ds.Dist, env.ds.Objects, env.key, 4, 0); err == nil {
		t.Fatal("leaf capacity 0 accepted")
	}
}

func TestEHIKNNExact(t *testing.T) {
	env := newTestEnv(t)
	rng := rand.New(rand.NewPCG(2, 2))
	root, nodes, err := EHIBuild(rng, env.ds.Dist, env.ds.Objects, env.key, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialEHI(env.addr, env.key, env.ds.Dist)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Upload(root, nodes); err != nil {
		t.Fatal(err)
	}
	for trial := range 8 {
		q := env.ds.Objects[rng.IntN(len(env.ds.Objects))].Vec
		k := 1 + trial
		got, costs, err := c.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(env.ds, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d rank %d: %g vs %g", k, i, got[i].Dist, want[i].Dist)
			}
		}
		// EHI pays one round trip per visited node — always more than one.
		if costs.RoundTrips < 2 {
			t.Fatalf("EHI used %d round trips", costs.RoundTrips)
		}
		if costs.DecryptTime <= 0 {
			t.Fatal("no decryption time recorded")
		}
	}
}

func TestEHIRangeExact(t *testing.T) {
	env := newTestEnv(t)
	rng := rand.New(rand.NewPCG(3, 3))
	root, nodes, err := EHIBuild(rng, env.ds.Dist, env.ds.Objects, env.key, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialEHI(env.addr, env.key, env.ds.Dist)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Upload(root, nodes); err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{1, 5, 12} {
		q := env.ds.Objects[rng.IntN(len(env.ds.Objects))].Vec
		got, _, err := c.Range(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, o := range env.ds.Objects {
			if env.ds.Dist.Dist(q, o.Vec) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("r=%g: got %d results, want %d", r, len(got), want)
		}
	}
}

func TestEHIServerStoresOnlyCiphertext(t *testing.T) {
	env := newTestEnv(t)
	rng := rand.New(rand.NewPCG(4, 4))
	_, nodes, err := EHIBuild(rng, env.ds.Dist, env.ds.Objects, env.key, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Every node blob must decrypt only under the right key.
	other, err := secret.Generate(env.key.Pivots(), secret.ModeCTRHMAC)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if _, err := other.Open(n.Blob); err == nil {
			t.Fatal("EHI node decrypts under a foreign key")
		}
		if _, err := env.key.Open(n.Blob); err != nil {
			t.Fatalf("EHI node fails under its own key: %v", err)
		}
	}
}

func TestFDHSignatureAndParams(t *testing.T) {
	env := newTestEnv(t)
	rng := rand.New(rand.NewPCG(5, 5))
	p, err := NewFDHParams(rng, env.ds.Dist, env.ds.Objects, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Anchors) != 12 || len(p.Radii) != 12 {
		t.Fatalf("params: %d anchors, %d radii", len(p.Anchors), len(p.Radii))
	}
	// Median radii should make bits roughly balanced over the collection.
	ones := 0
	for _, o := range env.ds.Objects {
		ones += SignatureBits(p.Signature(o.Vec))
	}
	avg := float64(ones) / float64(len(env.ds.Objects)) / 12
	if avg < 0.2 || avg > 0.8 {
		t.Fatalf("signature bits unbalanced: average fraction %g", avg)
	}
	if _, err := NewFDHParams(rng, env.ds.Dist, env.ds.Objects, 0); err == nil {
		t.Fatal("0 anchors accepted")
	}
	if _, err := NewFDHParams(rng, env.ds.Dist, env.ds.Objects, 65); err == nil {
		t.Fatal("65 anchors accepted")
	}
}

func TestKeysAtHamming(t *testing.T) {
	keys := keysAtHamming(0b1010, 4, 0)
	if len(keys) != 1 || keys[0] != 0b1010 {
		t.Fatalf("h=0: %v", keys)
	}
	keys = keysAtHamming(0b0000, 4, 1)
	if len(keys) != 4 {
		t.Fatalf("h=1 over 4 bits: %d keys", len(keys))
	}
	keys = keysAtHamming(0b0000, 4, 2)
	if len(keys) != 6 { // C(4,2)
		t.Fatalf("h=2 over 4 bits: %d keys", len(keys))
	}
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatal("duplicate key")
		}
		seen[k] = true
		if SignatureBits(k) != 2 {
			t.Fatalf("key %b not at Hamming distance 2", k)
		}
	}
}

func TestFDHKNNApproximate(t *testing.T) {
	env := newTestEnv(t)
	rng := rand.New(rand.NewPCG(6, 6))
	p, err := NewFDHParams(rng, env.ds.Dist, env.ds.Objects, 10)
	if err != nil {
		t.Fatal(err)
	}
	items, err := FDHBuild(p, env.key, env.ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(env.ds.Objects) {
		t.Fatalf("built %d items", len(items))
	}
	c, err := DialFDH(env.addr, env.key, p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Upload(items); err != nil {
		t.Fatal(err)
	}
	var recallSum float64
	const queries = 20
	for range queries {
		q := env.ds.Objects[rng.IntN(len(env.ds.Objects))].Vec
		got, costs, err := c.KNN(q, 1, 40, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("got %d results", len(got))
		}
		want := bruteKNN(env.ds, q, 1)
		if got[0].ID == want[0].ID {
			recallSum += 100
		}
		if costs.Candidates == 0 {
			t.Fatal("no candidates retrieved")
		}
	}
	// The query object itself shares its own bucket (Hamming distance 0), so
	// 1-NN recall on indexed queries must be high.
	if recallSum/queries < 75 {
		t.Fatalf("FDH 1-NN recall %g%% too low", recallSum/queries)
	}
}

func TestTrivialExactAndExpensive(t *testing.T) {
	env := newTestEnv(t)
	// Populate the encrypted store through the regular encrypted client.
	ec, err := core.DialEncrypted(env.addr, env.key, core.Options{MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	if _, err := ec.Insert(env.ds.Objects); err != nil {
		t.Fatal(err)
	}

	tc, err := DialTrivial(env.addr, env.key)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	rng := rand.New(rand.NewPCG(7, 7))
	q := env.ds.Objects[rng.IntN(len(env.ds.Objects))].Vec

	got, costs, err := tc.KNN(q, env.ds.Dist, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKNN(env.ds, q, 5)
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("rank %d: %g vs %g", i, got[i].Dist, want[i].Dist)
		}
	}
	// The whole collection must have crossed the wire.
	if costs.Candidates != int64(len(env.ds.Objects)) {
		t.Fatalf("downloaded %d of %d objects", costs.Candidates, len(env.ds.Objects))
	}

	rres, _, err := tc.Range(q, env.ds.Dist, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantN := 0
	for _, o := range env.ds.Objects {
		if env.ds.Dist.Dist(q, o.Vec) <= 4 {
			wantN++
		}
	}
	if len(rres) != wantN {
		t.Fatalf("range: %d results, want %d", len(rres), wantN)
	}
}

// The headline comparison: the Encrypted M-Index must beat EHI on round
// trips and the trivial scheme on communication cost for the same query.
func TestBaselineCostOrdering(t *testing.T) {
	env := newTestEnv(t)
	rng := rand.New(rand.NewPCG(8, 8))

	ec, err := core.DialEncrypted(env.addr, env.key, core.Options{MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	if _, err := ec.Insert(env.ds.Objects); err != nil {
		t.Fatal(err)
	}

	root, nodes, err := EHIBuild(rng, env.ds.Dist, env.ds.Objects, env.key, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	ehi, err := DialEHI(env.addr, env.key, env.ds.Dist)
	if err != nil {
		t.Fatal(err)
	}
	defer ehi.Close()
	if _, err := ehi.Upload(root, nodes); err != nil {
		t.Fatal(err)
	}

	tc, err := DialTrivial(env.addr, env.key)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	var mindexBytes, ehiTrips, mindexTrips, trivialBytes int64
	const queries = 10
	for range queries {
		q := env.ds.Objects[rng.IntN(len(env.ds.Objects))].Vec
		_, mc, err := ec.ApproxKNN(q, 1, 40)
		if err != nil {
			t.Fatal(err)
		}
		_, hc, err := ehi.KNN(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, tcosts, err := tc.KNN(q, env.ds.Dist, 1)
		if err != nil {
			t.Fatal(err)
		}
		mindexBytes += mc.CommBytes()
		mindexTrips += mc.RoundTrips
		ehiTrips += hc.RoundTrips
		trivialBytes += tcosts.CommBytes()
	}
	if mindexTrips != queries {
		t.Fatalf("encrypted M-Index used %d round trips for %d queries", mindexTrips, queries)
	}
	if ehiTrips <= mindexTrips {
		t.Fatalf("EHI round trips (%d) not worse than M-Index (%d)", ehiTrips, mindexTrips)
	}
	if trivialBytes <= mindexBytes {
		t.Fatalf("trivial bytes (%d) not worse than M-Index (%d)", trivialBytes, mindexBytes)
	}
}
