package baseline

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"net"
	"sort"
	"time"

	"simcloud/internal/core"
	"simcloud/internal/metric"
	"simcloud/internal/secret"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// FDHParams is the client-side secret of the FDH scheme: the anchor objects
// and their ball radii. Together with the cipher key they let authorized
// clients compute bucket signatures; the server sees only opaque 64-bit keys
// and ciphertexts.
type FDHParams struct {
	Anchors []metric.Vector
	Radii   []float64
	Dist    metric.Distance
}

// NewFDHParams samples numAnchors anchors from the data and sets each
// anchor's radius to the median of its distances to a data sample, which
// balances the signature bits (each bit is ~50/50), maximizing bucket
// discrimination.
func NewFDHParams(rng *rand.Rand, dist metric.Distance, data []metric.Object, numAnchors int) (*FDHParams, error) {
	if numAnchors < 1 || numAnchors > 64 {
		return nil, fmt.Errorf("baseline: FDH anchors must be in 1..64, got %d", numAnchors)
	}
	if len(data) < numAnchors {
		return nil, fmt.Errorf("baseline: cannot sample %d anchors from %d objects", numAnchors, len(data))
	}
	perm := rng.Perm(len(data))
	p := &FDHParams{Dist: dist}
	sampleSize := min(len(data), 500)
	for i := range numAnchors {
		anchor := data[perm[i]].Vec.Clone()
		dists := make([]float64, 0, sampleSize)
		for range sampleSize {
			o := data[rng.IntN(len(data))].Vec
			dists = append(dists, dist.Dist(anchor, o))
		}
		sort.Float64s(dists)
		p.Anchors = append(p.Anchors, anchor)
		p.Radii = append(p.Radii, dists[len(dists)/2])
	}
	return p, nil
}

// Signature maps a vector to its bucket key: bit i is set iff the object
// lies inside anchor i's ball.
func (p *FDHParams) Signature(v metric.Vector) uint64 {
	var sig uint64
	for i, a := range p.Anchors {
		if p.Dist.Dist(a, v) <= p.Radii[i] {
			sig |= 1 << uint(i)
		}
	}
	return sig
}

// FDHBuild encrypts every object and files it under its signature bucket.
func FDHBuild(p *FDHParams, key *secret.Key, objs []metric.Object) ([]wire.FDHItem, error) {
	items := make([]wire.FDHItem, 0, len(objs))
	for _, o := range objs {
		payload, err := key.EncryptObject(o)
		if err != nil {
			return nil, fmt.Errorf("baseline: encrypting object %d: %w", o.ID, err)
		}
		items = append(items, wire.FDHItem{Key: p.Signature(o.Vec), Payload: payload})
	}
	return items, nil
}

// FDHClient drives the FDH search: it fetches buckets in growing Hamming
// distance from the query signature and refines the decrypted objects
// locally. The scheme is approximate — objects whose signature differs in
// many bits are never retrieved.
type FDHClient struct {
	conn   *wire.CountingConn
	key    *secret.Key
	params *FDHParams
}

// DialFDH connects an FDH client to the bucket server at addr.
func DialFDH(addr string, key *secret.Key, params *FDHParams) (*FDHClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &FDHClient{conn: wire.NewCountingConn(conn), key: key, params: params}, nil
}

// Close releases the connection.
func (c *FDHClient) Close() error { return c.conn.Close() }

// Upload ships the encrypted bucket table to the server.
func (c *FDHClient) Upload(items []wire.FDHItem) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	respType, resp, err := c.roundTrip(wire.MsgPutFDH, wire.PutFDHReq{Items: items}.Encode(), &costs)
	if err != nil {
		return costs, err
	}
	if respType != wire.MsgAck {
		return costs, fmt.Errorf("baseline: unexpected upload response %v", respType)
	}
	ack, err := wire.DecodeAckResp(resp)
	if err != nil {
		return costs, err
	}
	creditServer(&costs, ack.ServerNanos)
	finishCosts(&costs, start)
	return costs, nil
}

func (c *FDHClient) roundTrip(t wire.MsgType, payload []byte, costs *stats.Costs) (wire.MsgType, []byte, error) {
	sentBefore, recvBefore := c.conn.BytesWritten(), c.conn.BytesRead()
	ioStart := time.Now()
	if err := wire.WriteFrame(c.conn, t, payload); err != nil {
		return 0, nil, err
	}
	respType, resp, err := wire.ReadFrame(c.conn)
	costs.CommTime += time.Since(ioStart)
	costs.BytesSent += c.conn.BytesWritten() - sentBefore
	costs.BytesReceived += c.conn.BytesRead() - recvBefore
	costs.RoundTrips++
	if err != nil {
		return 0, nil, err
	}
	if respType == wire.MsgError {
		m, derr := wire.DecodeErrorResp(resp)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, &wire.RemoteError{Msg: m.Msg}
	}
	return respType, resp, nil
}

// keysAtHamming enumerates all signatures at exactly Hamming distance h from
// sig over m bits.
func keysAtHamming(sig uint64, m, h int) []uint64 {
	var out []uint64
	var rec func(start int, remaining int, cur uint64)
	rec = func(start, remaining int, cur uint64) {
		if remaining == 0 {
			out = append(out, cur)
			return
		}
		for i := start; i <= m-remaining; i++ {
			rec(i+1, remaining-1, cur^(1<<uint(i)))
		}
	}
	rec(0, h, sig)
	return out
}

// KNN evaluates an approximate k-NN: buckets are fetched level by level
// (Hamming distance 0, 1, 2, …) until at least candTarget candidate objects
// have been retrieved or maxHamming is exhausted; the decrypted candidates
// are then refined locally.
func (c *FDHClient) KNN(q metric.Vector, k, candTarget, maxHamming int) ([]core.Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if k <= 0 {
		return nil, costs, fmt.Errorf("baseline: k must be positive, got %d", k)
	}
	if candTarget < k {
		candTarget = k
	}
	m := len(c.params.Anchors)
	if maxHamming > m {
		maxHamming = m
	}
	distStart := time.Now()
	sig := c.params.Signature(q)
	costs.DistCompTime += time.Since(distStart)
	costs.DistComps += int64(m)

	var results []core.Result
	retrieved := 0
	for h := 0; h <= maxHamming && retrieved < candTarget; h++ {
		keys := keysAtHamming(sig, m, h)
		respType, resp, err := c.roundTrip(wire.MsgFDHQuery, wire.FDHQueryReq{Keys: keys}.Encode(), &costs)
		if err != nil {
			return nil, costs, err
		}
		if respType != wire.MsgCandidates {
			return nil, costs, fmt.Errorf("baseline: unexpected FDH response %v", respType)
		}
		mres, err := wire.DecodeCandidatesResp(resp)
		if err != nil {
			return nil, costs, err
		}
		creditServer(&costs, mres.ServerNanos)
		for _, e := range mres.Entries {
			decStart := time.Now()
			o, err := c.key.DecryptObject(e.Payload)
			costs.DecryptTime += time.Since(decStart)
			if err != nil {
				return nil, costs, fmt.Errorf("baseline: decrypting FDH candidate: %w", err)
			}
			distStart := time.Now()
			d := c.params.Dist.Dist(q, o.Vec)
			costs.DistCompTime += time.Since(distStart)
			costs.DistComps++
			results = append(results, core.Result{ID: o.ID, Dist: d, Object: o})
		}
		retrieved += len(mres.Entries)
		costs.Candidates += int64(len(mres.Entries))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Dist < results[j].Dist })
	if len(results) > k {
		results = results[:k]
	}
	finishCosts(&costs, start)
	return results, costs, nil
}

// SignatureBits reports the Hamming weight of a signature (diagnostics).
func SignatureBits(sig uint64) int { return bits.OnesCount64(sig) }
