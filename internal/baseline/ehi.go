// Package baseline implements the secure similarity-search techniques the
// paper compares against (Section 3 and Section 5.4):
//
//   - EHI, the Encrypted Hierarchical Index of Yiu et al.: an ordinary
//     hierarchical metric index whose every node is encrypted; the server is
//     a pure blob store and the client drives the traversal, paying one
//     round trip per visited node.
//   - FDH, the Flexible Distance-based Hashing of Yiu et al.: objects are
//     hashed by membership in anchor balls to bucket signatures; the server
//     groups ciphertexts by signature and the client fetches buckets in
//     growing signature (Hamming) distance, refining locally — an
//     approximate technique.
//   - Trivial: download the entire encrypted collection and scan locally —
//     perfect privacy, maximal communication (Section 3's strawman).
//
// The referenced implementations are not available; these are re-built from
// the published descriptions and run over the same wire protocol, server
// and cipher as the Encrypted M-Index, so the Table 9 comparison measures
// algorithmic differences rather than implementation accidents.
package baseline

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"
	"net"
	"sort"
	"time"

	"simcloud/internal/core"
	"simcloud/internal/metric"
	"simcloud/internal/secret"
	"simcloud/internal/stats"
	"simcloud/internal/wire"
)

// ehiRouting is one routing entry of an internal EHI node: a center object,
// the covering radius of its subtree, and the child node ID.
type ehiRouting struct {
	Center metric.Vector
	Radius float64
	Child  uint64
}

// ehiNode is the plaintext form of one EHI node; it is serialized and
// encrypted before upload, so the server sees only opaque blobs.
type ehiNode struct {
	Leaf    bool
	Routing []ehiRouting    // internal nodes
	Objects []metric.Object // leaves
}

func encodeEHINode(n *ehiNode) []byte {
	var b wire.Buffer
	if n.Leaf {
		b.U8(1)
		b.U32(uint32(len(n.Objects)))
		for _, o := range n.Objects {
			b.U64(o.ID)
			b.Vec(o.Vec)
		}
		return b.B
	}
	b.U8(0)
	b.U32(uint32(len(n.Routing)))
	for _, rt := range n.Routing {
		b.Vec(rt.Center)
		b.F64(rt.Radius)
		b.U64(rt.Child)
	}
	return b.B
}

func decodeEHINode(p []byte) (*ehiNode, error) {
	r := wire.NewReader(p)
	leaf := r.U8()
	n := &ehiNode{Leaf: leaf == 1}
	count := int(r.U32())
	if count < 0 || count > len(p) {
		return nil, wire.ErrCodec
	}
	if n.Leaf {
		for range count {
			id := r.U64()
			vec := r.VecField()
			n.Objects = append(n.Objects, metric.Object{ID: id, Vec: vec})
		}
	} else {
		for range count {
			center := r.VecField()
			radius := r.F64()
			child := r.U64()
			n.Routing = append(n.Routing, ehiRouting{Center: center, Radius: radius, Child: child})
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return n, nil
}

// EHIBuild bulk-loads an encrypted hierarchical index: objects are
// recursively clustered around randomly sampled centers (fanout per node,
// at most leafCap objects per leaf) and every node is encrypted under key.
// Returns the root node ID and the encrypted node blobs for upload.
func EHIBuild(rng *rand.Rand, dist metric.Distance, objs []metric.Object,
	key *secret.Key, fanout, leafCap int) (uint64, []wire.EHINode, error) {
	if fanout < 2 {
		return 0, nil, fmt.Errorf("baseline: EHI fanout must be >= 2, got %d", fanout)
	}
	if leafCap < 1 {
		return 0, nil, fmt.Errorf("baseline: EHI leaf capacity must be >= 1, got %d", leafCap)
	}
	var nodes []wire.EHINode
	nextID := uint64(0)
	var build func(subset []metric.Object) (uint64, error)
	build = func(subset []metric.Object) (uint64, error) {
		id := nextID
		nextID++
		nodes = append(nodes, wire.EHINode{ID: id}) // reserve slot
		slot := len(nodes) - 1
		var n ehiNode
		if len(subset) <= leafCap {
			n = ehiNode{Leaf: true, Objects: subset}
		} else {
			// Sample fanout distinct centers.
			perm := rng.Perm(len(subset))
			k := min(fanout, len(subset))
			centers := make([]metric.Vector, k)
			for i := range k {
				centers[i] = subset[perm[i]].Vec
			}
			groups := make([][]metric.Object, k)
			radii := make([]float64, k)
			for _, o := range subset {
				best, bestD := 0, math.Inf(1)
				for i, c := range centers {
					if d := dist.Dist(o.Vec, c); d < bestD {
						best, bestD = i, d
					}
				}
				groups[best] = append(groups[best], o)
				if bestD > radii[best] {
					radii[best] = bestD
				}
			}
			for i, g := range groups {
				if len(g) == 0 {
					continue
				}
				// A group equal to the whole subset cannot shrink further
				// (duplicate-heavy data); force a leaf to guarantee progress.
				var childID uint64
				var err error
				if len(g) == len(subset) {
					childID = nextID
					nextID++
					blob, serr := key.Seal(encodeEHINode(&ehiNode{Leaf: true, Objects: g}))
					if serr != nil {
						return 0, serr
					}
					nodes = append(nodes, wire.EHINode{ID: childID, Blob: blob})
				} else {
					childID, err = build(g)
					if err != nil {
						return 0, err
					}
				}
				n.Routing = append(n.Routing, ehiRouting{
					Center: centers[i], Radius: radii[i], Child: childID,
				})
			}
		}
		blob, err := key.Seal(encodeEHINode(&n))
		if err != nil {
			return 0, err
		}
		nodes[slot].Blob = blob
		return id, nil
	}
	root, err := build(objs)
	if err != nil {
		return 0, nil, err
	}
	return root, nodes, nil
}

// EHIClient drives the client-side search over an uploaded EHI. All
// traversal logic, decryption and distance computation happen here; the
// server only serves blobs.
type EHIClient struct {
	conn *wire.CountingConn
	key  *secret.Key
	dist metric.Distance
	root uint64
}

// DialEHI connects an EHI client to the blob server at addr.
func DialEHI(addr string, key *secret.Key, dist metric.Distance) (*EHIClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &EHIClient{conn: wire.NewCountingConn(conn), key: key, dist: dist}, nil
}

// Close releases the connection.
func (c *EHIClient) Close() error { return c.conn.Close() }

// Upload ships the encrypted nodes to the server and records the root.
func (c *EHIClient) Upload(rootID uint64, nodes []wire.EHINode) (stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	respType, resp, err := c.roundTrip(wire.MsgPutNodes,
		wire.PutNodesReq{RootID: rootID, Nodes: nodes}.Encode(), &costs)
	if err != nil {
		return costs, err
	}
	if respType != wire.MsgAck {
		return costs, fmt.Errorf("baseline: unexpected upload response %v", respType)
	}
	ack, err := wire.DecodeAckResp(resp)
	if err != nil {
		return costs, err
	}
	c.root = rootID
	creditServer(&costs, ack.ServerNanos)
	finishCosts(&costs, start)
	return costs, nil
}

func (c *EHIClient) roundTrip(t wire.MsgType, payload []byte, costs *stats.Costs) (wire.MsgType, []byte, error) {
	sentBefore, recvBefore := c.conn.BytesWritten(), c.conn.BytesRead()
	ioStart := time.Now()
	if err := wire.WriteFrame(c.conn, t, payload); err != nil {
		return 0, nil, err
	}
	respType, resp, err := wire.ReadFrame(c.conn)
	costs.CommTime += time.Since(ioStart)
	costs.BytesSent += c.conn.BytesWritten() - sentBefore
	costs.BytesReceived += c.conn.BytesRead() - recvBefore
	costs.RoundTrips++
	if err != nil {
		return 0, nil, err
	}
	if respType == wire.MsgError {
		m, derr := wire.DecodeErrorResp(resp)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, &wire.RemoteError{Msg: m.Msg}
	}
	return respType, resp, nil
}

// fetchNode retrieves and decrypts one node (one round trip).
func (c *EHIClient) fetchNode(id uint64, costs *stats.Costs) (*ehiNode, error) {
	respType, resp, err := c.roundTrip(wire.MsgGetNode, wire.GetNodeReq{ID: id}.Encode(), costs)
	if err != nil {
		return nil, err
	}
	if respType != wire.MsgNodeBlob {
		return nil, fmt.Errorf("baseline: unexpected node response %v", respType)
	}
	m, err := wire.DecodeNodeBlobResp(resp)
	if err != nil {
		return nil, err
	}
	creditServer(costs, m.ServerNanos)
	decStart := time.Now()
	pt, err := c.key.Open(m.Blob)
	costs.DecryptTime += time.Since(decStart)
	if err != nil {
		return nil, fmt.Errorf("baseline: decrypting node %d: %w", id, err)
	}
	return decodeEHINode(pt)
}

// ehiPQ orders pending node fetches by metric lower bound.
type ehiPQItem struct {
	id uint64
	lb float64
}
type ehiPQ []ehiPQItem

func (q ehiPQ) Len() int           { return len(q) }
func (q ehiPQ) Less(i, j int) bool { return q[i].lb < q[j].lb }
func (q ehiPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *ehiPQ) Push(x any)        { *q = append(*q, x.(ehiPQItem)) }
func (q *ehiPQ) Pop() any {
	old := *q
	item := old[len(old)-1]
	*q = old[:len(old)-1]
	return item
}

// KNN evaluates an exact k-NN by best-first traversal: the client fetches
// and decrypts nodes in order of their lower-bound distance until no
// remaining subtree can improve the k-th best answer.
func (c *EHIClient) KNN(q metric.Vector, k int) ([]core.Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	if k <= 0 {
		return nil, costs, fmt.Errorf("baseline: k must be positive, got %d", k)
	}
	var best []core.Result
	radius := math.Inf(1)
	offer := func(o metric.Object, d float64) {
		best = append(best, core.Result{ID: o.ID, Dist: d, Object: o})
		sort.Slice(best, func(i, j int) bool { return best[i].Dist < best[j].Dist })
		if len(best) > k {
			best = best[:k]
		}
		if len(best) == k {
			radius = best[k-1].Dist
		}
	}
	pq := &ehiPQ{{id: c.root, lb: 0}}
	heap.Init(pq)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(ehiPQItem)
		if item.lb > radius {
			break
		}
		node, err := c.fetchNode(item.id, &costs)
		if err != nil {
			return nil, costs, err
		}
		if node.Leaf {
			for _, o := range node.Objects {
				distStart := time.Now()
				d := c.dist.Dist(q, o.Vec)
				costs.DistCompTime += time.Since(distStart)
				costs.DistComps++
				if d <= radius || len(best) < k {
					offer(o, d)
				}
			}
			costs.Candidates += int64(len(node.Objects))
			continue
		}
		for _, rt := range node.Routing {
			distStart := time.Now()
			d := c.dist.Dist(q, rt.Center)
			costs.DistCompTime += time.Since(distStart)
			costs.DistComps++
			lb := math.Max(item.lb, d-rt.Radius)
			if lb <= radius {
				heap.Push(pq, ehiPQItem{id: rt.Child, lb: lb})
			}
		}
	}
	finishCosts(&costs, start)
	return best, costs, nil
}

// Range evaluates an exact range query by pruned traversal.
func (c *EHIClient) Range(q metric.Vector, r float64) ([]core.Result, stats.Costs, error) {
	var costs stats.Costs
	start := time.Now()
	var out []core.Result
	var visit func(id uint64) error
	visit = func(id uint64) error {
		node, err := c.fetchNode(id, &costs)
		if err != nil {
			return err
		}
		if node.Leaf {
			for _, o := range node.Objects {
				distStart := time.Now()
				d := c.dist.Dist(q, o.Vec)
				costs.DistCompTime += time.Since(distStart)
				costs.DistComps++
				if d <= r {
					out = append(out, core.Result{ID: o.ID, Dist: d, Object: o})
				}
			}
			costs.Candidates += int64(len(node.Objects))
			return nil
		}
		for _, rt := range node.Routing {
			distStart := time.Now()
			d := c.dist.Dist(q, rt.Center)
			costs.DistCompTime += time.Since(distStart)
			costs.DistComps++
			if d <= rt.Radius+r {
				if err := visit(rt.Child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := visit(c.root); err != nil {
		return nil, costs, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	finishCosts(&costs, start)
	return out, costs, nil
}

func creditServer(costs *stats.Costs, serverNanos uint64) {
	st := time.Duration(serverNanos)
	costs.ServerTime += st
	costs.CommTime -= st
	if costs.CommTime < 0 {
		costs.CommTime = 0
	}
}

func finishCosts(costs *stats.Costs, start time.Time) {
	costs.Overall = time.Since(start)
	costs.ClientTime = costs.Overall - costs.ServerTime - costs.CommTime
	if costs.ClientTime < 0 {
		costs.ClientTime = 0
	}
}
