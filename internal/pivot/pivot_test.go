package pivot

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"simcloud/internal/metric"
)

func randObjects(rng *rand.Rand, n, dim int) []metric.Object {
	objs := make([]metric.Object, n)
	for i := range objs {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		objs[i] = metric.Object{ID: uint64(i), Vec: v}
	}
	return objs
}

func TestSelectRandomDistinct(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	data := randObjects(rng, 100, 4)
	s := SelectRandom(rng, metric.L1{}, data, 30)
	if s.N() != 30 {
		t.Fatalf("got %d pivots, want 30", s.N())
	}
	// All pivots must come from the data set and be pairwise distinct
	// (distinct source indexes; vectors are continuous so collisions are
	// practically impossible).
	for i := range s.Pivots {
		for j := i + 1; j < len(s.Pivots); j++ {
			if s.Pivots[i].Equal(s.Pivots[j]) {
				t.Fatalf("pivots %d and %d identical", i, j)
			}
		}
	}
}

func TestSelectRandomPanicsWhenTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rng := rand.New(rand.NewPCG(1, 1))
	SelectRandom(rng, metric.L1{}, randObjects(rng, 3, 2), 5)
}

func TestSelectRandomClonesVectors(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	data := randObjects(rng, 10, 3)
	s := SelectRandom(rng, metric.L1{}, data, 10)
	for i := range data {
		data[i].Vec[0] = 1e9
	}
	for _, p := range s.Pivots {
		if p[0] == 1e9 {
			t.Fatal("pivot aliases source data")
		}
	}
}

func TestDistancesMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	data := randObjects(rng, 50, 6)
	s := SelectRandom(rng, metric.L2{}, data, 10)
	q := randObjects(rng, 1, 6)[0].Vec
	dists := s.Distances(q)
	for i, p := range s.Pivots {
		if want := (metric.L2{}).Dist(p, q); dists[i] != want {
			t.Fatalf("dist[%d] = %g, want %g", i, dists[i], want)
		}
	}
}

func TestPermutationSortedAndValid(t *testing.T) {
	dists := []float64{5, 1, 3, 1, 0}
	perm := Permutation(dists)
	want := []int32{4, 1, 3, 2, 0} // ties (indexes 1,3 at distance 1) break by index
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
	if !ValidPermutation(perm, 5) {
		t.Fatal("invalid permutation")
	}
}

func TestQuickPermutationProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 128 {
			raw = raw[:128]
		}
		for i, v := range raw {
			if v != v { // NaN breaks ordering; distances are never NaN
				raw[i] = 0
			}
		}
		perm := Permutation(raw)
		if !ValidPermutation(perm, len(raw)) {
			return false
		}
		// Distances along the permutation must be non-decreasing, and equal
		// distances must keep index order.
		for i := 1; i < len(perm); i++ {
			da, db := raw[perm[i-1]], raw[perm[i]]
			if da > db {
				return false
			}
			if da == db && perm[i-1] > perm[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRanksInvertsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		rng := rand.New(rand.NewPCG(seed, 0))
		dists := make([]float64, size)
		for i := range dists {
			dists[i] = rng.Float64()
		}
		perm := Permutation(dists)
		ranks := Ranks(perm)
		for pos, p := range perm {
			if ranks[p] != int32(pos) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefix(t *testing.T) {
	perm := []int32{3, 1, 2, 0}
	if got := Prefix(perm, 2); len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("prefix = %v", got)
	}
	if got := Prefix(perm, 10); len(got) != 4 {
		t.Fatalf("over-long prefix = %v", got)
	}
	p := Prefix(perm, 4)
	p[0] = 99
	if perm[0] == 99 {
		t.Fatal("prefix aliases permutation")
	}
}

func TestValidPermutationRejects(t *testing.T) {
	cases := [][]int32{
		{0, 0},    // duplicate
		{1},       // out of range for n=1? index 1 >= n
		{0, 2},    // gap
		{-1, 0},   // negative
		{0, 1, 2}, // wrong length for n=2
	}
	ns := []int{2, 1, 2, 2, 2}
	for i, c := range cases {
		if ValidPermutation(c, ns[i]) {
			t.Errorf("case %d: %v accepted as permutation of %d", i, c, ns[i])
		}
	}
}

// Property: the pivot-filtering lower bound never exceeds the true distance
// (it must be a correct filter — objects it discards cannot be in range).
func TestQuickLowerBoundIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	d := metric.L1{}
	data := randObjects(rng, 64, 8)
	s := SelectRandom(rng, d, data, 16)
	for range 500 {
		q := randObjects(rng, 1, 8)[0].Vec
		o := randObjects(rng, 1, 8)[0].Vec
		lb := LowerBound(s.Distances(q), s.Distances(o))
		if td := d.Dist(q, o); lb > td+1e-9 {
			t.Fatalf("lower bound %g exceeds true distance %g", lb, td)
		}
	}
}

func TestLowerBoundKnown(t *testing.T) {
	if got := LowerBound([]float64{1, 5, 2}, []float64{4, 5, 1}); got != 3 {
		t.Fatalf("lb = %g, want 3", got)
	}
	if got := LowerBound([]float64{1, 2}, []float64{1}); got != 0 {
		t.Fatalf("mismatched lengths lb = %g, want 0", got)
	}
}

func TestFootruleWeightsGeometric(t *testing.T) {
	w := FootruleWeights(4)
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("weights = %v", w)
		}
	}
}

func TestFootrulePromiseIdentityIsZero(t *testing.T) {
	// A cell whose prefix equals the query's own permutation prefix has the
	// minimum (zero) promise.
	dists := []float64{0.3, 0.1, 0.7, 0.5}
	perm := Permutation(dists)
	ranks := Ranks(perm)
	w := FootruleWeights(4)
	if got := FootrulePromise(ranks, Prefix(perm, 2), w); got != 0 {
		t.Fatalf("promise of own prefix = %g, want 0", got)
	}
	// Any other leading pivot scores worse.
	other := []int32{perm[3]}
	if got := FootrulePromise(ranks, other, w); got <= 0 {
		t.Fatalf("promise of far pivot = %g, want > 0", got)
	}
}

func TestDistSumPromise(t *testing.T) {
	qDists := []float64{1, 10, 100}
	w := FootruleWeights(3)
	near := DistSumPromise(qDists, []int32{0, 1}, w)
	far := DistSumPromise(qDists, []int32{2, 1}, w)
	if near >= far {
		t.Fatalf("near promise %g should beat far promise %g", near, far)
	}
	if got := DistSumPromise(qDists, []int32{1}, w); got != 10 {
		t.Fatalf("single-level promise = %g, want 10", got)
	}
}

func TestPermutationStableUnderSortedInput(t *testing.T) {
	dists := []float64{0, 1, 2, 3}
	perm := Permutation(dists)
	if !sort.SliceIsSorted(perm, func(a, b int) bool { return perm[a] < perm[b] }) {
		t.Fatalf("sorted input should yield identity permutation, got %v", perm)
	}
}

func minPairwise(s *Set, d metric.Distance) float64 {
	minD := -1.0
	for i := range s.Pivots {
		for j := i + 1; j < len(s.Pivots); j++ {
			dist := d.Dist(s.Pivots[i], s.Pivots[j])
			if minD < 0 || dist < minD {
				minD = dist
			}
		}
	}
	return minD
}

func TestSelectMaxSeparated(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	d := metric.L2{}
	data := randObjects(rng, 500, 6)
	sep := SelectMaxSeparated(rng, d, data, 12, 0)
	if sep.N() != 12 {
		t.Fatalf("got %d pivots", sep.N())
	}
	// Greedy farthest-point must beat random selection on minimum pairwise
	// pivot distance (averaged over a few random draws).
	var randomSum float64
	const draws = 5
	for i := range draws {
		r := SelectRandom(rand.New(rand.NewPCG(uint64(i), 3)), d, data, 12)
		randomSum += minPairwise(r, d)
	}
	if sepMin := minPairwise(sep, d); sepMin <= randomSum/draws {
		t.Fatalf("max-separated min pairwise %g not above random average %g",
			sepMin, randomSum/draws)
	}
}

func TestSelectMaxSeparatedSmallData(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 22))
	data := randObjects(rng, 5, 3)
	s := SelectMaxSeparated(rng, metric.L1{}, data, 5, 2) // sampleCap below n
	if s.N() != 5 {
		t.Fatalf("got %d pivots", s.N())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > len(data)")
		}
	}()
	SelectMaxSeparated(rng, metric.L1{}, data, 6, 0)
}
