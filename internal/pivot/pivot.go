// Package pivot implements the reference-object (pivot) machinery shared by
// the M-Index and the Encrypted M-Index: pivot selection, object–pivot
// distance computation, pivot permutations in the sense of Chávez et al.
// ("Effective Proximity Retrieval by Ordering Permutations"), permutation
// prefixes, and the rank-based promise values used to order Voronoi cells
// during approximate search.
//
// A pivot permutation of an object o with respect to pivots p1..pn is the
// ordering of pivot indexes by increasing distance d(p_i, o), with ties
// broken by the smaller index — exactly the definition in Section 4.1 of the
// paper. The M-Index uses prefixes of this permutation to address Voronoi
// cells; the Encrypted M-Index makes the pivot set part of the secret key so
// the untrusted server only ever sees permutations (or raw distance vectors)
// without the pivots they refer to.
package pivot

import (
	"fmt"
	"math"
	"math/rand/v2"

	"simcloud/internal/metric"
	"simcloud/internal/simd"
)

// Set is an ordered collection of pivot vectors together with the distance
// function they are compared under. In the Encrypted M-Index the Set is part
// of the client secret key and never leaves the data owner's trust domain.
type Set struct {
	Dist   metric.Distance
	Pivots []metric.Vector
}

// NewSet builds a pivot set from the given vectors. The vectors are cloned
// so later mutation of the source slice cannot corrupt the set.
func NewSet(d metric.Distance, pivots []metric.Vector) *Set {
	cloned := make([]metric.Vector, len(pivots))
	for i, p := range pivots {
		cloned[i] = p.Clone()
	}
	return &Set{Dist: d, Pivots: cloned}
}

// SelectRandom chooses n distinct pivots uniformly at random from data, the
// strategy used in the paper ("the pivots used were chosen at random from
// within the data set"). It panics if data holds fewer than n objects.
func SelectRandom(rng *rand.Rand, d metric.Distance, data []metric.Object, n int) *Set {
	if len(data) < n {
		panic(fmt.Sprintf("pivot: cannot select %d pivots from %d objects", n, len(data)))
	}
	perm := rng.Perm(len(data))
	pivots := make([]metric.Vector, n)
	for i := range n {
		pivots[i] = data[perm[i]].Vec.Clone()
	}
	return &Set{Dist: d, Pivots: pivots}
}

// SelectMaxSeparated chooses n pivots by greedy farthest-point traversal
// (Gonzalez): the first pivot is random, each next pivot is the candidate
// maximizing its minimum distance to the pivots chosen so far. Well
// separated pivots produce more discriminative permutations than the
// paper's random choice; the ablation benchmarks quantify the difference.
// For large collections candidates are drawn from a random sample of
// sampleCap objects (<= 0 uses 1024).
func SelectMaxSeparated(rng *rand.Rand, d metric.Distance, data []metric.Object, n, sampleCap int) *Set {
	if len(data) < n {
		panic(fmt.Sprintf("pivot: cannot select %d pivots from %d objects", n, len(data)))
	}
	if sampleCap <= 0 {
		sampleCap = 1024
	}
	candIdx := rng.Perm(len(data))
	if len(candIdx) > sampleCap {
		candIdx = candIdx[:sampleCap]
	}
	if len(candIdx) < n {
		candIdx = rng.Perm(len(data))[:n]
	}
	// minDist[i] = distance from candidate i to its closest chosen pivot.
	minDist := make([]float64, len(candIdx))
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	pivots := make([]metric.Vector, 0, n)
	next := rng.IntN(len(candIdx))
	for len(pivots) < n {
		p := data[candIdx[next]].Vec
		pivots = append(pivots, p.Clone())
		best, bestD := -1, -1.0
		for i, ci := range candIdx {
			dist := d.Dist(p, data[ci].Vec)
			if dist < minDist[i] {
				minDist[i] = dist
			}
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		next = best
	}
	return &Set{Dist: d, Pivots: pivots}
}

// N returns the number of pivots.
func (s *Set) N() int { return len(s.Pivots) }

// Distances computes the distance from v to every pivot, in pivot order.
// This is the only metric computation an authorized client must perform
// before contacting the server (Algorithm 1 / Algorithm 2, line 1).
func (s *Set) Distances(v metric.Vector) []float64 {
	return s.DistancesInto(make([]float64, len(s.Pivots)), v)
}

// DistancesInto is Distances writing into a caller-provided slice of length
// N() — the allocation-free form query loops use (cmd/simbench workers
// compute one pivot-distance row per query).
func (s *Set) DistancesInto(dst []float64, v metric.Vector) []float64 {
	if len(dst) != len(s.Pivots) {
		panic(fmt.Sprintf("pivot: destination holds %d distances, need %d", len(dst), len(s.Pivots)))
	}
	for i, p := range s.Pivots {
		dst[i] = s.Dist.Dist(p, v)
	}
	return dst
}

// Permutation converts a distance vector (as returned by Distances) into a
// pivot permutation: the pivot indexes ordered by increasing distance, ties
// broken by smaller index.
func Permutation(dists []float64) []int32 {
	return PermutationInto(make([]int32, len(dists)), dists)
}

// PermutationInto is Permutation writing into a caller-provided slice of
// length len(dists). The ordering key — (distance, pivot index) — is a total
// order, so the result is unique and algorithm-independent; an insertion
// sort (quadratic in the pivot count, which the paper keeps small) avoids
// both the sort.SliceStable closure allocations and the interface
// conversion, fusing the Distances+Permutation path into zero allocations
// when the caller reuses buffers.
func PermutationInto(perm []int32, dists []float64) []int32 {
	if len(perm) != len(dists) {
		panic(fmt.Sprintf("pivot: destination holds %d elements, need %d", len(perm), len(dists)))
	}
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := 1; i < len(perm); i++ {
		p := perm[i]
		d := dists[p]
		j := i
		for ; j > 0; j-- {
			q := perm[j-1]
			if dists[q] < d || (dists[q] == d && q < p) {
				break
			}
			perm[j] = q
		}
		perm[j] = p
	}
	return perm
}

// Ranks inverts a permutation: ranks[i] is the position of pivot i within
// perm (0-based). The approximate search uses ranks to compute the
// Spearman-footrule promise of a cell prefix in O(prefix length).
func Ranks(perm []int32) []int32 {
	return RanksInto(make([]int32, len(perm)), perm)
}

// RanksInto is Ranks writing into a caller-provided slice of length
// len(perm).
func RanksInto(ranks, perm []int32) []int32 {
	if len(ranks) != len(perm) {
		panic(fmt.Sprintf("pivot: destination holds %d elements, need %d", len(ranks), len(perm)))
	}
	for pos, p := range perm {
		ranks[p] = int32(pos)
	}
	return ranks
}

// Prefix returns the first l elements of perm (or all of perm when l exceeds
// its length) as an independent slice.
func Prefix(perm []int32, l int) []int32 {
	if l > len(perm) {
		l = len(perm)
	}
	out := make([]int32, l)
	copy(out, perm[:l])
	return out
}

// ValidPermutation reports whether perm is a permutation of 0..n-1.
func ValidPermutation(perm []int32, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// LowerBound returns the best metric lower bound on d(q, o) derivable from
// the two distance vectors via the triangle inequality:
//
//	d(q,o) >= max_i |d(q,p_i) - d(o,p_i)|
//
// This is the pivot-filtering bound applied on lines 5–7 of the paper's
// Algorithm 3 to shrink candidate sets server-side without knowing q or o.
func LowerBound(qDists, oDists []float64) float64 {
	return simd.AbsMaxDiff64(qDists, oDists)
}

// FootruleWeights precomputes the geometric level weights 1, 1/2, 1/4, ...
// used by the weighted Spearman footrule promise up to maxLevel entries.
func FootruleWeights(maxLevel int) []float64 {
	w := make([]float64, maxLevel)
	v := 1.0
	for i := range w {
		w[i] = v
		v /= 2
	}
	return w
}

// FootrulePromise scores a cell prefix against a query's pivot ranks using a
// level-weighted Spearman footrule:
//
//	promise = Σ_k w[k] · |rank_q(prefix[k]) − k|
//
// Lower is better: a cell whose prefix pivots appear early in the query's
// own permutation is likely to contain objects close to the query. This is
// the rank-based "promise value" of the paper's Algorithm 4 (line 3).
func FootrulePromise(qRanks []int32, prefix []int32, weights []float64) float64 {
	var s float64
	for k, p := range prefix {
		d := float64(qRanks[p] - int32(k))
		if d < 0 {
			d = -d
		}
		s += weights[k] * d
	}
	return s
}

// DistSumPromise scores a cell prefix by the level-weighted sum of the
// query's distances to the prefix pivots. It needs the full query–pivot
// distance vector (the "precise strategy" request payload) and is the
// alternative ranking evaluated by the ablation benchmarks.
func DistSumPromise(qDists []float64, prefix []int32, weights []float64) float64 {
	var s float64
	for k, p := range prefix {
		s += weights[k] * qDists[p]
	}
	return s
}
