package pivot

import (
	"math/rand/v2"
	"slices"
	"sort"
	"testing"
)

// Permutation switched from sort.SliceStable to an allocation-free insertion
// sort; this pins the new implementation to the old one. The ordering key
// (distance, pivot index) is total, so the two must agree exactly — ties
// included, which the generator forces by drawing distances from a small
// integer grid.
func TestPermutationMatchesStableSortReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 34))
	for n := 0; n <= 64; n++ {
		for range 20 {
			dists := make([]float64, n)
			for i := range dists {
				dists[i] = float64(rng.IntN(max(n/2, 1)))
			}
			want := make([]int32, n)
			for i := range want {
				want[i] = int32(i)
			}
			sort.SliceStable(want, func(a, b int) bool {
				da, db := dists[want[a]], dists[want[b]]
				if da != db {
					return da < db
				}
				return want[a] < want[b]
			})
			got := PermutationInto(make([]int32, n), dists)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d dists=%v: got %v, want %v", n, dists, got, want)
			}
			if !slices.Equal(Permutation(dists), want) {
				t.Fatalf("n=%d: Permutation disagrees with PermutationInto", n)
			}
		}
	}
}

// The Into variants must write into the provided buffer and return it.
func TestIntoVariantsReuseBuffers(t *testing.T) {
	dists := []float64{3, 1, 2}
	perm := make([]int32, 3)
	if got := PermutationInto(perm, dists); &got[0] != &perm[0] {
		t.Fatal("PermutationInto did not reuse the buffer")
	}
	if want := []int32{1, 2, 0}; !slices.Equal(perm, want) {
		t.Fatalf("perm = %v, want %v", perm, want)
	}
	ranks := make([]int32, 3)
	if got := RanksInto(ranks, perm); &got[0] != &ranks[0] {
		t.Fatal("RanksInto did not reuse the buffer")
	}
	if want := []int32{2, 0, 1}; !slices.Equal(ranks, want) {
		t.Fatalf("ranks = %v, want %v", ranks, want)
	}
}
