package metric

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The distance functions delegate their inner loops to internal/simd; these
// tests pin the full Distance implementations — including the CoPhIR
// weighted combination — to scalar reference loops, bit for bit, across
// dimensions 1..130 (and 280 for CoPhIR). Equal distances must stay exactly
// equal across code paths, or the ranked-list equivalence suites would see
// ordering drift.

func refL1(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func refL2(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

func refChebyshev(a, b Vector) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func refLp(a, b Vector, p float64) float64 {
	var s float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		s += math.Pow(d, p)
	}
	return math.Pow(s, 1/p)
}

func refCosine(a, b Vector) float64 {
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return math.Pi / 2
	}
	c := dot / math.Sqrt(na*nb)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

func refCoPhIR(a, b Vector) float64 {
	var sum float64
	sum += 2.0 * refL1(a[0:64], b[0:64])
	sum += 3.0 * refL1(a[64:128], b[64:128])
	sum += 2.0 * refL2(a[128:140], b[128:140])
	sum += 4.0 * refL1(a[140:220], b[140:220])
	sum += 0.5 * refL1(a[220:280], b[220:280])
	return math.Max(sum, 0)
}

func randTestVec(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		switch rng.IntN(4) {
		case 0:
			v[i] = float32(rng.NormFloat64() * 100)
		case 1:
			v[i] = float32(rng.IntN(256))
		case 2:
			v[i] = 0
		default:
			v[i] = float32(rng.Float64()*2 - 1)
		}
	}
	return v
}

func sameBits(x, y float64) bool {
	return math.Float64bits(x) == math.Float64bits(y)
}

func TestDistancesMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for dim := 1; dim <= 130; dim++ {
		for range 10 {
			a, b := randTestVec(rng, dim), randTestVec(rng, dim)
			if got, want := (L1{}).Dist(a, b), refL1(a, b); !sameBits(got, want) {
				t.Fatalf("L1 dim %d: got %x, want %x", dim, got, want)
			}
			if got, want := (L2{}).Dist(a, b), refL2(a, b); !sameBits(got, want) {
				t.Fatalf("L2 dim %d: got %x, want %x", dim, got, want)
			}
			if got, want := (Chebyshev{}).Dist(a, b), refChebyshev(a, b); !sameBits(got, want) {
				t.Fatalf("Chebyshev dim %d: got %x, want %x", dim, got, want)
			}
			p := 1 + rng.Float64()*2
			if got, want := (Lp{P: p}).Dist(a, b), refLp(a, b, p); !sameBits(got, want) {
				t.Fatalf("Lp dim %d p=%g: got %x, want %x", dim, p, got, want)
			}
			if got, want := (Cosine{}).Dist(a, b), refCosine(a, b); !sameBits(got, want) {
				t.Fatalf("Cosine dim %d: got %x, want %x", dim, got, want)
			}
		}
	}
}

func TestCosineDegenerateInputs(t *testing.T) {
	zero := make(Vector, 5)
	v := Vector{1, 0, 2, 0, -3}
	if got := (Cosine{}).Dist(zero, zero); got != 0 {
		t.Fatalf("cosine(0,0) = %g, want 0", got)
	}
	if got := (Cosine{}).Dist(zero, v); got != math.Pi/2 {
		t.Fatalf("cosine(0,v) = %g, want pi/2", got)
	}
	if got := (Cosine{}).Dist(v, zero); got != math.Pi/2 {
		t.Fatalf("cosine(v,0) = %g, want pi/2", got)
	}
	// Identical directions must land exactly on 0 (the clamp guards the
	// |c|>1 rounding case), and opposite directions exactly on pi.
	w := Vector{2, 0, 4, 0, -6}
	if got := (Cosine{}).Dist(v, w); got != 0 {
		t.Fatalf("cosine(v,2v) = %g, want 0", got)
	}
	neg := Vector{-1, 0, -2, 0, 3}
	if got := (Cosine{}).Dist(v, neg); got != math.Pi {
		t.Fatalf("cosine(v,-v) = %g, want pi", got)
	}
}

func TestCoPhIRMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	d := NewCoPhIR()
	for range 50 {
		a, b := randTestVec(rng, CoPhIRDim), randTestVec(rng, CoPhIRDim)
		if got, want := d.Dist(a, b), refCoPhIR(a, b); !sameBits(got, want) {
			t.Fatalf("cophir: got %x, want %x", got, want)
		}
	}
}
