package metric

import "math"

// The CoPhIR collection compares images by a weighted combination of the
// distances of five MPEG-7 visual descriptors extracted from each image
// (Bolettieri et al., "CoPhIR: A Test Collection for Content-Based Image
// Retrieval"; the weights follow the MESSIF configuration used by the
// M-Index papers). Each 280-dimensional CoPhIR vector in this reproduction
// is the concatenation of the five sub-descriptors:
//
//	offset  len  descriptor           inner metric  weight
//	     0   64  ScalableColor        L1            2.0
//	    64   64  ColorStructure       L1            3.0
//	   128   12  ColorLayout          L2            2.0
//	   140   80  EdgeHistogram        L1            4.0
//	   220   60  HomogeneousTexture   L1            0.5
//
// A positively weighted sum of metrics over projections is itself a metric,
// so the combination satisfies the metric postulates. The original MPEG-7
// distance functions for ColorLayout, EdgeHistogram and HomogeneousTexture
// additionally apply per-coefficient weights and quantization tables that are
// not redistributable; the substitution keeps the sub-descriptor structure,
// the mix of L1/L2 components and the relative descriptor weights, which is
// what drives the cost profile measured in the paper (an expensive,
// multi-component distance function evaluated on 280 dimensions).

// CoPhIRDim is the dimension of a combined CoPhIR descriptor vector.
const CoPhIRDim = 280

// Segment describes one sub-descriptor inside a combined vector.
type Segment struct {
	Name   string
	Offset int
	Len    int
	Inner  Distance
	Weight float64
}

// Combined is a weighted sum of inner distances over disjoint segments of
// the vector. It is the general form of the CoPhIR distance function.
type Combined struct {
	CombinedName string
	Segments     []Segment
	dim          int
}

// NewCombined builds a combined distance over the given segments. Segments
// must tile a prefix of the vector contiguously (offset of each segment is
// the end of the previous one).
func NewCombined(name string, segments []Segment) *Combined {
	dim := 0
	for _, s := range segments {
		if s.Offset != dim {
			panic("metric: combined distance segments must be contiguous")
		}
		if s.Weight <= 0 {
			panic("metric: combined distance weights must be positive")
		}
		dim += s.Len
	}
	return &Combined{CombinedName: name, Segments: segments, dim: dim}
}

// NewCoPhIR returns the CoPhIR five-descriptor combined distance.
func NewCoPhIR() *Combined {
	return NewCombined("cophir", []Segment{
		{Name: "ScalableColor", Offset: 0, Len: 64, Inner: L1{}, Weight: 2.0},
		{Name: "ColorStructure", Offset: 64, Len: 64, Inner: L1{}, Weight: 3.0},
		{Name: "ColorLayout", Offset: 128, Len: 12, Inner: L2{}, Weight: 2.0},
		{Name: "EdgeHistogram", Offset: 140, Len: 80, Inner: L1{}, Weight: 4.0},
		{Name: "HomogeneousTexture", Offset: 220, Len: 60, Inner: L1{}, Weight: 0.5},
	})
}

// Name implements Distance.
func (c *Combined) Name() string { return c.CombinedName }

// Dim returns the required vector dimension.
func (c *Combined) Dim() int { return c.dim }

// Dist implements Distance.
func (c *Combined) Dist(a, b Vector) float64 {
	dimCheck(a, b)
	if len(a) != c.dim {
		panic("metric: combined distance dimension mismatch")
	}
	var sum float64
	for _, s := range c.Segments {
		end := s.Offset + s.Len
		sum += s.Weight * s.Inner.Dist(a[s.Offset:end], b[s.Offset:end])
	}
	// Guard against accumulated floating error producing a negative zero.
	return math.Max(sum, 0)
}
