package metric

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestL1Known(t *testing.T) {
	d := L1{}
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{0, 0}, Vector{0, 0}, 0},
		{Vector{1, 2, 3}, Vector{1, 2, 3}, 0},
		{Vector{0, 0}, Vector{3, 4}, 7},
		{Vector{-1, -2}, Vector{1, 2}, 6},
		{Vector{1.5}, Vector{-1.5}, 3},
	}
	for _, c := range cases {
		if got := d.Dist(c.a, c.b); !approxEqual(got, c.want, 1e-9) {
			t.Errorf("L1(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestL2Known(t *testing.T) {
	d := L2{}
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{0, 0}, Vector{3, 4}, 5},
		{Vector{1, 1, 1}, Vector{1, 1, 1}, 0},
		{Vector{0}, Vector{2}, 2},
		{Vector{-3, 0}, Vector{0, 4}, 5},
	}
	for _, c := range cases {
		if got := d.Dist(c.a, c.b); !approxEqual(got, c.want, 1e-9) {
			t.Errorf("L2(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestChebyshevKnown(t *testing.T) {
	d := Chebyshev{}
	if got := d.Dist(Vector{1, 5, 2}, Vector{2, 1, 2}); got != 4 {
		t.Errorf("Linf = %g, want 4", got)
	}
	if got := d.Dist(Vector{0}, Vector{0}); got != 0 {
		t.Errorf("Linf identity = %g, want 0", got)
	}
}

func TestLpMatchesSpecialCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for range 200 {
		a, b := randomVec(rng, 8), randomVec(rng, 8)
		if got, want := (Lp{P: 1}).Dist(a, b), (L1{}).Dist(a, b); !approxEqual(got, want, 1e-9) {
			t.Fatalf("Lp(1) = %g, L1 = %g", got, want)
		}
		if got, want := (Lp{P: 2}).Dist(a, b), (L2{}).Dist(a, b); !approxEqual(got, want, 1e-9) {
			t.Fatalf("Lp(2) = %g, L2 = %g", got, want)
		}
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	(L1{}).Dist(Vector{1, 2}, Vector{1})
}

func TestLpSubOnePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on P < 1")
		}
	}()
	(Lp{P: 0.5}).Dist(Vector{1}, Vector{2})
}

func randomVec(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * 10)
	}
	return v
}

// checkPostulates verifies the four metric postulates on random triples.
func checkPostulates(t *testing.T, d Distance, dim int, gen func(*rand.Rand, int) Vector) {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, uint64(dim)))
	const eps = 1e-7
	for range 300 {
		a, b, c := gen(rng, dim), gen(rng, dim), gen(rng, dim)
		dab, dba := d.Dist(a, b), d.Dist(b, a)
		if dab < 0 {
			t.Fatalf("%s: negative distance %g", d.Name(), dab)
		}
		if !approxEqual(dab, dba, eps) {
			t.Fatalf("%s: asymmetric %g vs %g", d.Name(), dab, dba)
		}
		if got := d.Dist(a, a); got != 0 {
			t.Fatalf("%s: d(a,a) = %g, want 0", d.Name(), got)
		}
		dac, dcb := d.Dist(a, c), d.Dist(c, b)
		if dab > dac+dcb+eps*(1+dab) {
			t.Fatalf("%s: triangle inequality violated: d(a,b)=%g > d(a,c)+d(c,b)=%g",
				d.Name(), dab, dac+dcb)
		}
	}
}

func TestMetricPostulates(t *testing.T) {
	for _, tc := range []struct {
		d   Distance
		dim int
	}{
		{L1{}, 17},
		{L2{}, 96},
		{Chebyshev{}, 8},
		{Lp{P: 3}, 12},
		{Lp{P: 1.5}, 5},
	} {
		t.Run(tc.d.Name(), func(t *testing.T) {
			checkPostulates(t, tc.d, tc.dim, randomVec)
		})
	}
}

func TestCoPhIRMetricPostulates(t *testing.T) {
	d := NewCoPhIR()
	checkPostulates(t, d, CoPhIRDim, func(rng *rand.Rand, dim int) Vector {
		v := make(Vector, dim)
		for i := range v {
			v[i] = float32(rng.IntN(256))
		}
		return v
	})
}

func TestCoPhIRStructure(t *testing.T) {
	d := NewCoPhIR()
	if d.Dim() != CoPhIRDim {
		t.Fatalf("CoPhIR dim = %d, want %d", d.Dim(), CoPhIRDim)
	}
	total := 0
	for _, s := range d.Segments {
		total += s.Len
	}
	if total != CoPhIRDim {
		t.Fatalf("segments tile %d dims, want %d", total, CoPhIRDim)
	}
	// Distance decomposes as the weighted sum of segment distances.
	rng := rand.New(rand.NewPCG(7, 7))
	a, b := randomVec(rng, CoPhIRDim), randomVec(rng, CoPhIRDim)
	var want float64
	for _, s := range d.Segments {
		want += s.Weight * s.Inner.Dist(a[s.Offset:s.Offset+s.Len], b[s.Offset:s.Offset+s.Len])
	}
	if got := d.Dist(a, b); !approxEqual(got, want, 1e-9) {
		t.Fatalf("combined = %g, want %g", got, want)
	}
}

func TestCombinedRejectsGaps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-contiguous segments")
		}
	}()
	NewCombined("bad", []Segment{
		{Name: "a", Offset: 0, Len: 4, Inner: L1{}, Weight: 1},
		{Name: "b", Offset: 5, Len: 4, Inner: L1{}, Weight: 1},
	})
}

func TestCombinedRejectsNonPositiveWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero weight")
		}
	}()
	NewCombined("bad", []Segment{{Name: "a", Offset: 0, Len: 4, Inner: L1{}, Weight: 0}})
}

func TestByName(t *testing.T) {
	for _, name := range []string{"L1", "L2", "Linf", "L3", "cophir", "cosine"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, d.Name())
		}
	}
	if _, err := ByName("hamming"); err == nil {
		t.Error("ByName(hamming) should fail")
	}
	if _, err := ByName("L0.5"); err == nil {
		t.Error("ByName(L0.5) should fail (not a metric)")
	}
}

func TestVectorCloneEqual(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	if !v.Equal(w) {
		t.Fatal("clone not equal")
	}
	w[0] = 9
	if v.Equal(w) {
		t.Fatal("clone aliases original")
	}
	if v.Equal(Vector{1, 2}) {
		t.Fatal("different dims compare equal")
	}
}

// Property: L1 dominates L2 dominates Linf on the same pair, and all scale
// linearly under vector scaling.
func TestQuickNormOrdering(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		half := len(raw) / 2
		a, b := Vector(raw[:half]), Vector(raw[half:2*half])
		for i := range a {
			if math.IsNaN(float64(a[i])) || math.IsInf(float64(a[i]), 0) ||
				math.IsNaN(float64(b[i])) || math.IsInf(float64(b[i]), 0) {
				return true
			}
			// Keep magnitudes sane so the comparison is numerically meaningful.
			a[i] = float32(math.Mod(float64(a[i]), 1e6))
			b[i] = float32(math.Mod(float64(b[i]), 1e6))
		}
		l1 := (L1{}).Dist(a, b)
		l2 := (L2{}).Dist(a, b)
		linf := (Chebyshev{}).Dist(a, b)
		return l1+1e-6 >= l2 && l2+1e-6 >= linf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingWrapper(t *testing.T) {
	c := NewCounting(L1{})
	a, b := Vector{1, 2}, Vector{3, 4}
	want := (L1{}).Dist(a, b)
	for range 5 {
		if got := c.Dist(a, b); got != want {
			t.Fatalf("counting changed value: %g vs %g", got, want)
		}
	}
	if c.Count() != 5 {
		t.Fatalf("count = %d, want 5", c.Count())
	}
	if c.Name() != "L1" {
		t.Fatalf("name = %q", c.Name())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset did not zero the counter")
	}
}

func TestTimedWrapper(t *testing.T) {
	w := NewTimed(L2{})
	a, b := Vector{0, 0}, Vector{3, 4}
	for range 10 {
		if got := w.Dist(a, b); got != 5 {
			t.Fatalf("timed changed value: %g", got)
		}
	}
	if w.Count() != 10 {
		t.Fatalf("count = %d, want 10", w.Count())
	}
	if w.Elapsed() <= 0 {
		t.Fatal("no elapsed time recorded")
	}
	if w.Name() != "L2" {
		t.Fatalf("name = %q", w.Name())
	}
	w.Reset()
	if w.Count() != 0 || w.Elapsed() != 0 {
		t.Fatal("reset did not zero")
	}
}
