package metric

import (
	"time"

	"simcloud/internal/stats"
)

// Counting wraps a Distance and counts every evaluation. It is the hook the
// benchmark harness uses to attribute distance computations to the client or
// the server side, one of the central cost components of the paper's
// evaluation.
type Counting struct {
	Inner Distance
	N     stats.Counter
}

// NewCounting wraps inner in a counting Distance.
func NewCounting(inner Distance) *Counting {
	return &Counting{Inner: inner}
}

// Name implements Distance.
func (c *Counting) Name() string { return c.Inner.Name() }

// Dist implements Distance.
func (c *Counting) Dist(a, b Vector) float64 {
	c.N.Add(1)
	return c.Inner.Dist(a, b)
}

// Count returns the number of distance evaluations so far.
func (c *Counting) Count() int64 { return c.N.Value() }

// Reset zeroes the evaluation counter.
func (c *Counting) Reset() { c.N.Reset() }

// Timed wraps a Distance and accumulates the wall-clock time spent in
// distance evaluations ("Dist. comp. time" in the paper's tables) as well as
// the number of evaluations.
type Timed struct {
	Inner Distance
	T     stats.Timer
	N     stats.Counter
}

// NewTimed wraps inner in a timing Distance.
func NewTimed(inner Distance) *Timed {
	return &Timed{Inner: inner}
}

// Name implements Distance.
func (t *Timed) Name() string { return t.Inner.Name() }

// Dist implements Distance.
func (t *Timed) Dist(a, b Vector) float64 {
	start := time.Now()
	d := t.Inner.Dist(a, b)
	t.T.Add(time.Since(start))
	t.N.Add(1)
	return d
}

// Elapsed returns the accumulated distance-computation time.
func (t *Timed) Elapsed() time.Duration { return t.T.Value() }

// Count returns the number of distance evaluations so far.
func (t *Timed) Count() int64 { return t.N.Value() }

// Reset zeroes the timer and counter.
func (t *Timed) Reset() {
	t.T.Reset()
	t.N.Reset()
}
