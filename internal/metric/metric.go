// Package metric implements the metric-space framework underlying the
// similarity cloud: data objects, the Distance abstraction, the concrete
// distance functions used by the paper's evaluation (L1, L2, general
// Minkowski Lp, Chebyshev, and the CoPhIR-style weighted combination of
// MPEG-7 descriptor distances), plus instrumentation wrappers that count and
// time distance computations.
//
// It plays the role of the MESSIF metric-space framework in the original
// system, restricted to what the Encrypted M-Index needs: a domain of
// objects D, and a total distance function d: D × D → R satisfying the
// metric postulates (non-negativity, identity, symmetry, triangle
// inequality).
package metric

import (
	"fmt"
	"math"

	"simcloud/internal/simd"
)

// Vector is a metric-space descriptor: a fixed-dimension numeric vector.
// Descriptors are stored as float32 — the precision of the original MPEG-7
// and gene-expression data — while all distance arithmetic is carried out in
// float64.
type Vector []float32

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports whether v and w have identical dimension and components.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Object is a metric-space object: a descriptor extracted from a raw data
// item, carrying the identifier that references the raw object in the
// (separately stored and encrypted) raw-data storage.
type Object struct {
	ID  uint64
	Vec Vector
}

// Distance is a total metric distance function over Vectors.
//
// Implementations must satisfy the metric postulates for all vectors of the
// same dimension; calling Dist on vectors of different dimensions is a
// programming error and panics.
type Distance interface {
	// Name identifies the function (used in configuration and logs).
	Name() string
	// Dist returns the distance between a and b.
	Dist(a, b Vector) float64
}

// dimCheck panics when a and b disagree in dimension. Distance mismatch is
// always a caller bug (objects from different domains), never runtime data.
func dimCheck(a, b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: dimension mismatch %d vs %d", len(a), len(b)))
	}
}

// L1 is the Manhattan distance, used by the YEAST and HUMAN gene-expression
// data sets in the paper.
type L1 struct{}

// Name implements Distance.
func (L1) Name() string { return "L1" }

// Dist implements Distance. The accumulation is delegated to the unrolled
// kernel, which is bit-for-bit equivalent to the scalar index-order loop
// (see internal/simd).
func (L1) Dist(a, b Vector) float64 {
	dimCheck(a, b)
	return simd.L1(a, b)
}

// L2 is the Euclidean distance.
type L2 struct{}

// Name implements Distance.
func (L2) Name() string { return "L2" }

// Dist implements Distance.
func (L2) Dist(a, b Vector) float64 {
	dimCheck(a, b)
	return math.Sqrt(simd.SqL2(a, b))
}

// Chebyshev is the L∞ distance (maximum coordinate difference).
type Chebyshev struct{}

// Name implements Distance.
func (Chebyshev) Name() string { return "Linf" }

// Dist implements Distance.
func (Chebyshev) Dist(a, b Vector) float64 {
	dimCheck(a, b)
	return simd.Chebyshev(a, b)
}

// Lp is the general Minkowski distance of order P ≥ 1.
type Lp struct {
	P float64
}

// Name implements Distance.
func (l Lp) Name() string { return fmt.Sprintf("L%g", l.P) }

// Dist implements Distance.
func (l Lp) Dist(a, b Vector) float64 {
	dimCheck(a, b)
	if l.P < 1 {
		panic("metric: Lp requires P >= 1 to satisfy the triangle inequality")
	}
	return math.Pow(simd.PowSum(a, b, l.P), 1/l.P)
}

// Cosine is the angular distance: the arc length acos(cos-similarity)
// between the two vectors' directions, in [0, π]. On unit-normalized
// vectors — the embedding workload this distance exists for — it is a true
// metric (the great-circle distance on the sphere, so the triangle
// inequality the pivot-filtering bounds rely on holds). On unnormalized
// vectors it ignores magnitude and is only a pseudo-metric (two parallel
// vectors of different length have distance 0); index exactness guarantees
// then hold for the pseudo-metric, not for any magnitude-aware notion of
// similarity.
//
// Degenerate inputs are made total rather than NaN: two zero vectors are at
// distance 0, a zero vector against a non-zero one at π/2 (the "orthogonal"
// convention — no direction information either way).
type Cosine struct{}

// Name implements Distance.
func (Cosine) Name() string { return "cosine" }

// Dist implements Distance. The three inner-product sums come from one
// unrolled pass (simd.DotNorms), bit-for-bit equal to scalar loops.
func (Cosine) Dist(a, b Vector) float64 {
	dimCheck(a, b)
	dot, na, nb := simd.DotNorms(a, b)
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return math.Pi / 2
	}
	c := dot / math.Sqrt(na*nb)
	// Rounding can push |c| a hair past 1; clamp before Acos turns it NaN.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// ByName returns the distance function registered under name, as produced by
// the Name methods above ("L1", "L2", "Linf", "L<p>", "cophir", "cosine").
func ByName(name string) (Distance, error) {
	switch name {
	case "L1":
		return L1{}, nil
	case "L2":
		return L2{}, nil
	case "Linf":
		return Chebyshev{}, nil
	case "cophir":
		return NewCoPhIR(), nil
	case "cosine":
		return Cosine{}, nil
	}
	var p float64
	if _, err := fmt.Sscanf(name, "L%g", &p); err == nil && p >= 1 {
		return Lp{P: p}, nil
	}
	return nil, fmt.Errorf("metric: unknown distance function %q", name)
}
