module simcloud

go 1.23
