module simcloud

go 1.24
