package simcloud

// Benchmarks regenerating the paper's evaluation, one benchmark per table
// (see EXPERIMENTS.md for the full-scale `simbench` runs and paper-vs-
// measured discussion), plus ablation benches for the design choices listed
// in DESIGN.md §5.
//
// Benchmark scale: the gene-expression sets run at full paper size; CoPhIR
// runs at a laptop-scale subset (override with SIMCLOUD_BENCH_SCALE).
// Search benchmarks report recall, communication cost and candidate counts
// via b.ReportMetric.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"simcloud/internal/baseline"
	"simcloud/internal/bench"
	"simcloud/internal/core"
	"simcloud/internal/dataset"
	"simcloud/internal/engine"
	"simcloud/internal/metric"
	"simcloud/internal/mindex"
	"simcloud/internal/pivot"
	"simcloud/internal/secret"
	"simcloud/internal/server"
	"simcloud/internal/stats"
	"simcloud/internal/wal"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0xBE7C)) }

func benchCoPhIRScale() int {
	if v := os.Getenv("SIMCLOUD_BENCH_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 10000
}

func benchOptions() bench.Options {
	return bench.Options{
		CoPhIRScale: benchCoPhIRScale(),
		Queries:     100,
		K:           30,
		Seed:        2012,
		BulkSize:    1000,
	}
}

// --- Construction (Tables 3 and 4) ------------------------------------

func benchConstruction(b *testing.B, specName string, encrypted bool) {
	o := benchOptions()
	spec, err := bench.SpecByName(specName)
	if err != nil {
		b.Fatal(err)
	}
	ds := spec.Load(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costs, err := bench.Construction(ds, spec, o, encrypted)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(costs.ClientTime.Seconds(), "client-s")
		b.ReportMetric(costs.EncryptTime.Seconds(), "encrypt-s")
		b.ReportMetric(costs.DistCompTime.Seconds(), "dist-s")
		b.ReportMetric(costs.ServerTime.Seconds(), "server-s")
		b.ReportMetric(costs.CommTime.Seconds(), "comm-s")
	}
	b.SetBytes(0)
}

func BenchmarkTable3ConstructionEncrypted(b *testing.B) {
	for _, name := range []string{"YEAST", "HUMAN", "CoPhIR"} {
		b.Run(name, func(b *testing.B) { benchConstruction(b, name, true) })
	}
}

func BenchmarkTable4ConstructionPlain(b *testing.B) {
	for _, name := range []string{"YEAST", "HUMAN", "CoPhIR"} {
		b.Run(name, func(b *testing.B) { benchConstruction(b, name, false) })
	}
}

// --- Search (Tables 5–8) ----------------------------------------------

// searchEnv caches a built cloud per (spec, encrypted) so candidate-size
// sub-benchmarks share one index.
type searchEnv struct {
	cloud   *bench.Cloud
	ds      *dataset.Dataset
	queries []Object
	exact   [][]uint64
}

var (
	searchEnvMu sync.Mutex
	searchEnvs  = map[string]*searchEnv{}
)

func getSearchEnv(b *testing.B, specName string, encrypted bool) *searchEnv {
	b.Helper()
	o := benchOptions()
	keyStr := fmt.Sprintf("%s-%v", specName, encrypted)
	searchEnvMu.Lock()
	defer searchEnvMu.Unlock()
	if env, ok := searchEnvs[keyStr]; ok {
		return env
	}
	spec, err := bench.SpecByName(specName)
	if err != nil {
		b.Fatal(err)
	}
	ds := spec.Load(o)
	queries, indexed := dataset.SampleQueries(ds, o.Queries, o.Seed, false)
	var cloud *bench.Cloud
	if encrypted {
		cloud, err = bench.NewEncryptedCloud(ds, spec.Cfg, o.Seed, core.Options{})
	} else {
		cloud, err = bench.NewPlainCloud(ds, spec.Cfg, o.Seed)
	}
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cloud.InsertAll(indexed, o.BulkSize); err != nil {
		b.Fatal(err)
	}
	env := &searchEnv{
		cloud:   cloud,
		ds:      ds,
		queries: queries,
		exact:   bench.GroundTruth(ds, indexed, queries, o.K),
	}
	searchEnvs[keyStr] = env
	return env
}

func benchSearch(b *testing.B, specName string, encrypted bool, candSize int) {
	env := getSearchEnv(b, specName, encrypted)
	const k = 30
	var sum stats.Costs
	var recallSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.queries[i%len(env.queries)]
		var res []core.Result
		var costs stats.Costs
		var err error
		query := core.Query{Kind: core.KindApproxKNN, Vec: q.Vec, K: k, CandSize: candSize}
		if encrypted {
			res, costs, err = env.cloud.Enc.Search(context.Background(), query)
		} else {
			res, costs, err = env.cloud.Plain.Search(context.Background(), query)
		}
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]uint64, len(res))
		for j, r := range res {
			ids[j] = r.ID
		}
		recallSum += stats.Recall(ids, env.exact[i%len(env.queries)])
		sum.Accumulate(costs)
	}
	b.StopTimer()
	avg := sum.DividedBy(b.N)
	b.ReportMetric(recallSum/float64(b.N), "recall-%")
	b.ReportMetric(float64(avg.CommBytes())/1000, "comm-kB")
	b.ReportMetric(float64(avg.Candidates), "candidates")
	b.ReportMetric(avg.DecryptTime.Seconds()*1000, "decrypt-ms")
	b.ReportMetric(avg.ServerTime.Seconds()*1000, "server-ms")
}

func BenchmarkTable5ApproxKNNEncryptedYeast(b *testing.B) {
	for _, cs := range []int{150, 300, 600, 1500} {
		b.Run(fmt.Sprintf("cand%d", cs), func(b *testing.B) { benchSearch(b, "YEAST", true, cs) })
	}
}

func BenchmarkTable6ApproxKNNEncryptedCoPhIR(b *testing.B) {
	for _, cs := range []int{500, 1000, 5000} {
		b.Run(fmt.Sprintf("cand%d", cs), func(b *testing.B) { benchSearch(b, "CoPhIR", true, cs) })
	}
}

func BenchmarkTable7ApproxKNNPlainYeast(b *testing.B) {
	for _, cs := range []int{150, 300, 600, 1500} {
		b.Run(fmt.Sprintf("cand%d", cs), func(b *testing.B) { benchSearch(b, "YEAST", false, cs) })
	}
}

func BenchmarkTable8ApproxKNNPlainCoPhIR(b *testing.B) {
	for _, cs := range []int{500, 1000, 5000} {
		b.Run(fmt.Sprintf("cand%d", cs), func(b *testing.B) { benchSearch(b, "CoPhIR", false, cs) })
	}
}

// --- 1-NN comparison (Table 9) -----------------------------------------

// table9Env caches the four clients of the Section 5.4 comparison.
type table9Env struct {
	cloud   *bench.Cloud
	ehi     *baseline.EHIClient
	fdh     *baseline.FDHClient
	triv    *baseline.TrivialClient
	ds      *dataset.Dataset
	queries []Object
	exact   [][]uint64
}

var (
	t9Once sync.Once
	t9Env  *table9Env
	t9Err  error
)

func getTable9Env(b *testing.B) *table9Env {
	b.Helper()
	t9Once.Do(func() {
		o := benchOptions()
		spec, err := bench.SpecByName("YEAST")
		if err != nil {
			t9Err = err
			return
		}
		ds := spec.Load(o)
		queries, indexed := dataset.SampleQueries(ds, o.Queries, o.Seed, true)
		cloud, err := bench.NewEncryptedCloud(ds, spec.Cfg, o.Seed, core.Options{})
		if err != nil {
			t9Err = err
			return
		}
		if _, err := cloud.InsertAll(indexed, o.BulkSize); err != nil {
			t9Err = err
			return
		}
		rng := newRNG(o.Seed)
		root, nodes, err := baseline.EHIBuild(rng, ds.Dist, indexed, cloud.Key, 10, spec.Cfg.BucketCapacity/4)
		if err != nil {
			t9Err = err
			return
		}
		ehi, err := baseline.DialEHI(cloud.Srv.Addr(), cloud.Key, ds.Dist)
		if err != nil {
			t9Err = err
			return
		}
		if _, err := ehi.Upload(root, nodes); err != nil {
			t9Err = err
			return
		}
		params, err := baseline.NewFDHParams(rng, ds.Dist, indexed, 16)
		if err != nil {
			t9Err = err
			return
		}
		items, err := baseline.FDHBuild(params, cloud.Key, indexed)
		if err != nil {
			t9Err = err
			return
		}
		fdh, err := baseline.DialFDH(cloud.Srv.Addr(), cloud.Key, params)
		if err != nil {
			t9Err = err
			return
		}
		if _, err := fdh.Upload(items); err != nil {
			t9Err = err
			return
		}
		triv, err := baseline.DialTrivial(cloud.Srv.Addr(), cloud.Key)
		if err != nil {
			t9Err = err
			return
		}
		t9Env = &table9Env{
			cloud: cloud, ehi: ehi, fdh: fdh, triv: triv,
			ds: ds, queries: queries,
			exact: bench.GroundTruth(ds, indexed, queries, 1),
		}
	})
	if t9Err != nil {
		b.Fatal(t9Err)
	}
	return t9Env
}

func benchTable9(b *testing.B, query func(env *table9Env, q Vector) ([]core.Result, stats.Costs, error)) {
	env := getTable9Env(b)
	var sum stats.Costs
	var recallSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(env.queries)
		res, costs, err := query(env, env.queries[qi].Vec)
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]uint64, len(res))
		for j, r := range res {
			ids[j] = r.ID
		}
		recallSum += stats.Recall(ids, env.exact[qi])
		sum.Accumulate(costs)
	}
	b.StopTimer()
	avg := sum.DividedBy(b.N)
	b.ReportMetric(recallSum/float64(b.N), "recall-%")
	b.ReportMetric(float64(avg.CommBytes())/1000, "comm-kB")
	b.ReportMetric(float64(avg.RoundTrips), "roundtrips")
	b.ReportMetric(float64(avg.Candidates), "candidates")
}

func BenchmarkTable9ApproxOneNN(b *testing.B) {
	b.Run("EncMIndex", func(b *testing.B) {
		benchTable9(b, func(env *table9Env, q Vector) ([]core.Result, stats.Costs, error) {
			return env.cloud.Enc.Search(context.Background(), core.Query{Kind: core.KindFirstCell, Vec: q, K: 1})
		})
	})
	b.Run("EHI", func(b *testing.B) {
		benchTable9(b, func(env *table9Env, q Vector) ([]core.Result, stats.Costs, error) {
			return env.ehi.KNN(q, 1)
		})
	})
	b.Run("FDH", func(b *testing.B) {
		benchTable9(b, func(env *table9Env, q Vector) ([]core.Result, stats.Costs, error) {
			return env.fdh.KNN(q, 1, 42, 2)
		})
	})
	b.Run("Trivial", func(b *testing.B) {
		benchTable9(b, func(env *table9Env, q Vector) ([]core.Result, stats.Costs, error) {
			return env.triv.KNN(q, env.ds.Dist, 1)
		})
	})
}

// --- Sharded engine scaling (DESIGN.md §Sharding) -----------------------

// shardBenchEntries prepares plain (unencrypted) index entries once, so the
// benchmark measures pure engine work: routing, locking, splitting, search
// fan-out and merge.
var (
	shardBenchOnce    sync.Once
	shardBenchEntries []mindex.Entry
	shardBenchQueries []mindex.ApproxQuery
	shardBenchDists   [][]float64
	shardBenchObjects []metric.Object
	shardBenchPivots  *pivot.Set
)

func shardBenchSetup() {
	shardBenchOnce.Do(func() {
		const pivots = 24
		ds := dataset.Clustered(2024, 20000, 8, 12, L2())
		rng := newRNG(2024)
		pv := pivot.SelectRandom(rng, ds.Dist, ds.Objects, pivots)
		shardBenchObjects = ds.Objects
		shardBenchPivots = pv
		for _, o := range ds.Objects {
			dists := pv.Distances(o.Vec)
			shardBenchEntries = append(shardBenchEntries, mindex.Entry{
				ID:    o.ID,
				Perm:  pivot.Permutation(dists),
				Dists: dists,
			})
		}
		for i := range 64 {
			q := ds.Objects[(i*311)%ds.Size()].Vec
			qDists := pv.Distances(q)
			shardBenchQueries = append(shardBenchQueries, mindex.ApproxQuery{
				Ranks: pivot.Ranks(pivot.Permutation(qDists)),
				Dists: qDists,
			})
			shardBenchDists = append(shardBenchDists, qDists)
		}
	})
}

func shardBenchConfig(shards int) mindex.Config {
	return mindex.Config{
		NumPivots: 24, MaxLevel: 6, BucketCapacity: 200,
		Storage: mindex.StorageMemory, Ranking: mindex.RankFootrule,
		Shards: shards,
	}
}

// BenchmarkShardedVsSingle measures the sharded engine against the
// single-lock baseline: bulk-insert throughput and approximate-kNN /
// range-query latency at 1, 4 and 8 shards. On a multi-core host the
// sharded inserts and searches spread across the worker pool; on one core
// the numbers bound the sharding overhead instead.
func BenchmarkShardedVsSingle(b *testing.B) {
	shardBenchSetup()
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("insert/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := engine.New(shardBenchConfig(shards))
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.InsertBulk(shardBenchEntries); err != nil {
					b.Fatal(err)
				}
				if eng.Size() != len(shardBenchEntries) {
					b.Fatal("lost entries")
				}
				eng.Close()
			}
			b.ReportMetric(float64(len(shardBenchEntries))*float64(b.N)/b.Elapsed().Seconds(), "inserts/s")
		})
	}
	for _, shards := range []int{1, 4, 8} {
		eng, err := engine.New(shardBenchConfig(shards))
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		if err := eng.InsertBulk(shardBenchEntries); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("approx/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cands, err := eng.ApproxCandidates(shardBenchQueries[i%len(shardBenchQueries)], 600)
				if err != nil {
					b.Fatal(err)
				}
				if len(cands) == 0 {
					b.Fatal("no candidates")
				}
			}
		})
		b.Run(fmt.Sprintf("range/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.RangeByDists(shardBenchDists[i%len(shardBenchDists)], 4); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Concurrent search throughput: the configuration sharding exists
		// for. RunParallel drives GOMAXPROCS goroutines against the engine.
		b.Run(fmt.Sprintf("approx-parallel/shards=%d", shards), func(b *testing.B) {
			var qi atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(qi.Add(1))
					if _, err := eng.ApproxCandidates(shardBenchQueries[i%len(shardBenchQueries)], 600); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkBulkLoad measures bulk-ingest throughput at two layers.
//
// The engine group is in-core: the bottom-up builder (one InsertBulk call,
// every shard group crosses the builder threshold) against the incremental
// per-entry path (chunks below the threshold — the pre-PR InsertBulk
// algorithm, kept as the builder's reference implementation). Both produce
// byte-identical snapshots (TestBulkBuildShardEquivalence).
//
// The pipeline group is end to end over loopback TCP with a WAL attached:
// "batch" is the pre-PR ingest pipeline — stop-and-wait InsertContext
// chunks of the paper's bulk size with -wal-sync always, one fsync per
// chunk — while "stream" is the new one — pipelined ingest-chunk frames
// under windowed acks with WAL group commit, one fsync per window plus the
// end-of-stream flush, so both runs end with the same durability. The
// stream/batch ratio at shards=1 is the PR's ingest speedup, gated in CI
// by cmd/benchgate -speedup-min. Shard counts beyond 1 add the parallel
// per-shard builds; with -cpu 4,8 on a multi-core host they overlap, on
// one core the numbers bound the fan-out overhead instead.
func BenchmarkBulkLoad(b *testing.B) {
	shardBenchSetup()
	load := func(b *testing.B, storage mindex.StorageKind, shards, chunk int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := shardBenchConfig(shards)
			cfg.Storage = storage
			if storage == mindex.StorageDisk {
				cfg.DiskPath = b.TempDir()
			}
			b.StartTimer()
			eng, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for off := 0; off < len(shardBenchEntries); off += chunk {
				end := min(off+chunk, len(shardBenchEntries))
				if err := eng.InsertBulk(shardBenchEntries[off:end]); err != nil {
					b.Fatal(err)
				}
			}
			if eng.Size() != len(shardBenchEntries) {
				b.Fatal("lost entries")
			}
			eng.Close()
		}
		b.ReportMetric(float64(len(shardBenchEntries))*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
	}
	for _, storage := range []mindex.StorageKind{mindex.StorageMemory, mindex.StorageDisk} {
		// Chunks of 15 stay below mindex's builder threshold, so every entry
		// takes the per-entry append/split path — the pre-builder baseline.
		b.Run(fmt.Sprintf("engine/%s/incremental/shards=1", storage), func(b *testing.B) {
			load(b, storage, 1, 15)
		})
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("engine/%s/builder/shards=%d", storage, shards), func(b *testing.B) {
				load(b, storage, shards, len(shardBenchEntries))
			})
		}
	}

	key, err := secret.Generate(shardBenchPivots, secret.ModeCTRHMAC)
	if err != nil {
		b.Fatal(err)
	}
	pipeline := func(b *testing.B, shards int, policy wal.SyncPolicy, stream bool) {
		objs := shardBenchObjects
		opts := core.Options{MaxLevel: 6, Ranking: mindex.RankFootrule}
		if stream {
			// The streamed mode ships construction-bulk-sized frames (the
			// paper's bulk size) under the ack window; the batch mode keeps
			// the pre-PR default of 64-entry pipelined frames, each of which
			// the server WAL-appends (and, under -wal-sync always, fsyncs).
			opts.BatchChunk = 1000
		}
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv, err := server.NewEncrypted(shardBenchConfig(shards))
			if err != nil {
				b.Fatal(err)
			}
			l, _, err := wal.Open(b.TempDir(), policy)
			if err != nil {
				b.Fatal(err)
			}
			srv.AttachWAL(l)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			client, err := core.DialEncrypted(srv.Addr(), key, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if stream {
				if _, err := client.InsertStream(objs); err != nil {
					b.Fatal(err)
				}
			} else {
				const bulk = 1000 // the paper's construction bulk size
				for off := 0; off < len(objs); off += bulk {
					end := min(off+bulk, len(objs))
					if _, err := client.Insert(objs[off:end]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			if got := srv.Index().Size(); got != len(objs) {
				b.Fatalf("server holds %d entries, want %d", got, len(objs))
			}
			client.Close()
			srv.Close()
			l.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(len(shardBenchObjects))*float64(b.N)/b.Elapsed().Seconds(), "objs/s")
	}
	b.Run("pipeline/batch/shards=1", func(b *testing.B) {
		pipeline(b, 1, wal.SyncAlways, false)
	})
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("pipeline/stream/shards=%d", shards), func(b *testing.B) {
			pipeline(b, shards, wal.SyncGroup, true)
		})
	}
}

// BenchmarkChurn measures the mutable index at steady state: each round
// tombstones the oldest batch of entries, inserts a fresh batch under new
// IDs, and runs one approximate query — the sustained insert/delete
// workload an append-only index cannot express. Auto-compaction is on
// (fraction 0.25), so the numbers include the periodic shard rebuilds that
// keep tombstones from accumulating. The reported churn-ops/s counts
// deletes + inserts.
func BenchmarkChurn(b *testing.B) {
	shardBenchSetup()
	const population = 10000
	const batch = 100
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := shardBenchConfig(shards)
			cfg.AutoCompactFraction = 0.25
			eng, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			if err := eng.InsertBulk(shardBenchEntries[:population]); err != nil {
				b.Fatal(err)
			}
			// FIFO of live entries: each round deletes the oldest batch and
			// appends the fresh one, holding the live set at steady state.
			fifo := make([]mindex.Entry, population)
			copy(fifo, shardBenchEntries[:population])
			nextID := uint64(1) << 32 // fresh IDs, disjoint from the data set's
			src := population         // recycle pool cursor for fresh pivot metadata
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				deleted, err := eng.Delete(fifo[:batch])
				if err != nil {
					b.Fatal(err)
				}
				if deleted != batch {
					b.Fatalf("deleted %d of %d", deleted, batch)
				}
				fifo = fifo[batch:]
				fresh := make([]mindex.Entry, batch)
				for j := range fresh {
					e := shardBenchEntries[src%len(shardBenchEntries)]
					src++
					e.ID = nextID
					nextID++
					fresh[j] = e
				}
				if err := eng.InsertBulk(fresh); err != nil {
					b.Fatal(err)
				}
				fifo = append(fifo, fresh...)
				if _, err := eng.ApproxCandidates(shardBenchQueries[i%len(shardBenchQueries)], 600); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if eng.Size() != population {
				b.Fatalf("steady state drifted to %d entries", eng.Size())
			}
			b.ReportMetric(float64(2*batch)*float64(b.N)/b.Elapsed().Seconds(), "churn-ops/s")
		})
	}
}

// --- Ablations (DESIGN.md §5) ------------------------------------------

// BenchmarkAblationPromise compares the two cell-ranking strategies at
// equal candidate size: the rank-based footrule (permutation request) vs
// the distance-sum ranking (distance-vector request).
func BenchmarkAblationPromise(b *testing.B) {
	for _, ranking := range []mindex.RankStrategy{mindex.RankFootrule, mindex.RankDistSum} {
		b.Run(ranking.String(), func(b *testing.B) {
			ds := dataset.Yeast()
			spec, _ := bench.SpecByName("YEAST")
			cfg := spec.Cfg
			cfg.Ranking = ranking
			queries, indexed := dataset.SampleQueries(ds, 50, 99, false)
			cloud, err := bench.NewEncryptedCloud(ds, cfg, 99, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer cloud.Close()
			if _, err := cloud.InsertAll(indexed, 1000); err != nil {
				b.Fatal(err)
			}
			exact := bench.GroundTruth(ds, indexed, queries, 30)
			var recallSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qi := i % len(queries)
				res, _, err := cloud.Enc.Search(context.Background(), core.Query{
					Kind: core.KindApproxKNN, Vec: queries[qi].Vec, K: 30, CandSize: 600,
				})
				if err != nil {
					b.Fatal(err)
				}
				ids := make([]uint64, len(res))
				for j, r := range res {
					ids[j] = r.ID
				}
				recallSum += stats.Recall(ids, exact[qi])
			}
			b.ReportMetric(recallSum/float64(b.N), "recall-%")
		})
	}
}

// BenchmarkAblationFilter compares range-query cost with permutation-only
// records (no server-side pivot filtering) against records carrying full
// distance vectors (Algorithm 1's precise strategy).
func BenchmarkAblationFilter(b *testing.B) {
	for _, storeDists := range []bool{false, true} {
		name := "permonly"
		if storeDists {
			name = "withdists"
		}
		b.Run(name, func(b *testing.B) {
			ds := dataset.Yeast()
			spec, _ := bench.SpecByName("YEAST")
			queries, indexed := dataset.SampleQueries(ds, 50, 17, false)
			cloud, err := bench.NewEncryptedCloud(ds, spec.Cfg, 17, core.Options{StoreDists: storeDists})
			if err != nil {
				b.Fatal(err)
			}
			defer cloud.Close()
			if _, err := cloud.InsertAll(indexed, 1000); err != nil {
				b.Fatal(err)
			}
			var sum stats.Costs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, costs, err := cloud.Enc.Search(context.Background(), core.Query{
					Kind: core.KindRange, Vec: queries[i%len(queries)].Vec, Radius: 300,
				})
				if err != nil {
					b.Fatal(err)
				}
				sum.Accumulate(costs)
			}
			b.StopTimer()
			avg := sum.DividedBy(b.N)
			b.ReportMetric(float64(avg.Candidates), "candidates")
			b.ReportMetric(float64(avg.CommBytes())/1000, "comm-kB")
		})
	}
}

// BenchmarkAblationStorage compares memory vs disk bucket storage on the
// same collection and workload.
func BenchmarkAblationStorage(b *testing.B) {
	for _, storage := range []mindex.StorageKind{mindex.StorageMemory, mindex.StorageDisk} {
		b.Run(storage.String(), func(b *testing.B) {
			ds := dataset.Yeast()
			spec, _ := bench.SpecByName("YEAST")
			cfg := spec.Cfg
			cfg.Storage = storage
			queries, indexed := dataset.SampleQueries(ds, 50, 23, false)
			cloud, err := bench.NewEncryptedCloud(ds, cfg, 23, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer cloud.Close()
			if _, err := cloud.InsertAll(indexed, 1000); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cloud.Enc.Search(context.Background(), core.Query{
					Kind: core.KindApproxKNN, Vec: queries[i%len(queries)].Vec, K: 30, CandSize: 600,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCipher compares the two cipher constructions on object
// encrypt/decrypt round trips.
func BenchmarkAblationCipher(b *testing.B) {
	ds := dataset.Yeast()
	pivots := SelectPivots(31, ds.Dist, ds.Objects, 8)
	for _, mode := range []secret.Mode{secret.ModeCTRHMAC, secret.ModeGCM} {
		b.Run(mode.String(), func(b *testing.B) {
			key, err := secret.Generate(pivots, mode)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := ds.Objects[i%ds.Size()]
				ct, err := key.EncryptObject(o)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := key.DecryptObject(ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPivotSelection compares the paper's random pivot choice
// against greedy max-separation at equal pivot count and candidate size.
func BenchmarkAblationPivotSelection(b *testing.B) {
	ds := dataset.Yeast()
	for _, strategy := range []string{"random", "maxsep"} {
		b.Run(strategy, func(b *testing.B) {
			rng := newRNG(47)
			var pv *pivot.Set
			if strategy == "maxsep" {
				pv = pivot.SelectMaxSeparated(rng, ds.Dist, ds.Objects, 30, 0)
			} else {
				pv = pivot.SelectRandom(rng, ds.Dist, ds.Objects, 30)
			}
			key, err := secret.Generate(pv, secret.ModeCTRHMAC)
			if err != nil {
				b.Fatal(err)
			}
			spec, _ := bench.SpecByName("YEAST")
			srv, err := server.NewEncrypted(spec.Cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			if err := srv.Start("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			client, err := core.DialEncrypted(srv.Addr(), key, core.Options{MaxLevel: spec.Cfg.MaxLevel})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			queries, indexed := dataset.SampleQueries(ds, 50, 47, false)
			for start := 0; start < len(indexed); start += 1000 {
				if _, err := client.Insert(indexed[start:min(start+1000, len(indexed))]); err != nil {
					b.Fatal(err)
				}
			}
			exact := bench.GroundTruth(ds, indexed, queries, 30)
			var recallSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qi := i % len(queries)
				res, _, err := client.Search(context.Background(), core.Query{
					Kind: core.KindApproxKNN, Vec: queries[qi].Vec, K: 30, CandSize: 600,
				})
				if err != nil {
					b.Fatal(err)
				}
				ids := make([]uint64, len(res))
				for j, r := range res {
					ids[j] = r.ID
				}
				recallSum += stats.Recall(ids, exact[qi])
			}
			b.ReportMetric(recallSum/float64(b.N), "recall-%")
		})
	}
}

// BenchmarkAblationTransform measures the price of the distribution-hiding
// distance transformation (the paper's future-work privacy level 4,
// implemented in internal/transform): same range workload, raw vs
// transformed stored distances. The transform loosens pruning, so the
// candidate sets and communication grow — results stay exact either way.
func BenchmarkAblationTransform(b *testing.B) {
	for _, hide := range []bool{false, true} {
		name := "raw"
		if hide {
			name = "hidden"
		}
		b.Run(name, func(b *testing.B) {
			ds := dataset.Yeast()
			spec, _ := bench.SpecByName("YEAST")
			queries, indexed := dataset.SampleQueries(ds, 50, 19, false)
			cloud, err := bench.NewEncryptedCloud(ds, spec.Cfg, 19, core.Options{StoreDists: true})
			if err != nil {
				b.Fatal(err)
			}
			defer cloud.Close()
			if hide {
				if err := FitEqualizingTransform(cloud.Key, indexed, 300, 32); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := cloud.InsertAll(indexed, 1000); err != nil {
				b.Fatal(err)
			}
			var sum stats.Costs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, costs, err := cloud.Enc.Search(context.Background(), core.Query{
					Kind: core.KindRange, Vec: queries[i%len(queries)].Vec, Radius: 300,
				})
				if err != nil {
					b.Fatal(err)
				}
				sum.Accumulate(costs)
			}
			b.StopTimer()
			avg := sum.DividedBy(b.N)
			b.ReportMetric(float64(avg.Candidates), "candidates")
			b.ReportMetric(float64(avg.CommBytes())/1000, "comm-kB")
		})
	}
}

// BenchmarkAblationPivots sweeps the pivot count: more pivots give finer
// partitioning (better recall at equal candidate size) at higher insert and
// query-preprocessing cost.
func BenchmarkAblationPivots(b *testing.B) {
	for _, n := range []int{10, 30, 60} {
		b.Run(fmt.Sprintf("pivots%d", n), func(b *testing.B) {
			ds := dataset.Yeast()
			cfg := mindex.Config{
				NumPivots: n, MaxLevel: min(6, n), BucketCapacity: 200,
				Storage: mindex.StorageMemory, Ranking: mindex.RankFootrule,
			}
			queries, indexed := dataset.SampleQueries(ds, 50, 41, false)
			cloud, err := bench.NewEncryptedCloud(ds, cfg, 41, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer cloud.Close()
			if _, err := cloud.InsertAll(indexed, 1000); err != nil {
				b.Fatal(err)
			}
			exact := bench.GroundTruth(ds, indexed, queries, 30)
			var recallSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qi := i % len(queries)
				res, _, err := cloud.Enc.Search(context.Background(), core.Query{
					Kind: core.KindApproxKNN, Vec: queries[qi].Vec, K: 30, CandSize: 600,
				})
				if err != nil {
					b.Fatal(err)
				}
				ids := make([]uint64, len(res))
				for j, r := range res {
					ids[j] = r.ID
				}
				recallSum += stats.Recall(ids, exact[qi])
			}
			b.ReportMetric(recallSum/float64(b.N), "recall-%")
		})
	}
}
