package simcloud

// End-to-end test of the command-line tools: build the binaries, generate a
// collection and a key, start a server process, and drive it with the
// client — the deployment story the README documents.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles the cmd binaries once into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"simdatagen", "simkeygen", "simserver", "simclient", "simbench", "simcoord", "simgate"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond); err == nil {
			conn.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", addr)
}

func TestCommandLinePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bins := buildTools(t)
	work := t.TempDir()
	data := filepath.Join(work, "demo.simcdat")
	keyFile := filepath.Join(work, "demo.key")

	// Generate a small clustered collection and the owner's key.
	out := run(t, filepath.Join(bins, "simdatagen"),
		"-name", "clustered", "-n", "400", "-dim", "8", "-clusters", "5",
		"-dist", "L2", "-seed", "3", "-out", data)
	if !strings.Contains(out, "400") {
		t.Fatalf("datagen output: %s", out)
	}
	out = run(t, filepath.Join(bins, "simkeygen"),
		"-data", data, "-pivots", "10", "-out", keyFile)
	if !strings.Contains(out, "10 pivots") {
		t.Fatalf("keygen output: %s", out)
	}
	if fi, err := os.Stat(keyFile); err != nil || fi.Mode().Perm() != 0o600 {
		t.Fatalf("key file mode: %v, err %v", fi.Mode(), err)
	}

	// Start the encrypted server.
	addr := freePort(t)
	srv := exec.Command(filepath.Join(bins, "simserver"),
		"-mode", "encrypted", "-addr", addr, "-pivots", "10", "-max-level", "4")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitListening(t, addr)

	client := filepath.Join(bins, "simclient")
	out = run(t, client, "-addr", addr, "-key", keyFile, "-max-level", "4",
		"-op", "insert", "-data", data)
	if !strings.Contains(out, "inserted 400 encrypted objects") {
		t.Fatalf("insert output: %s", out)
	}

	// Approximate k-NN: the query object itself must come back first with
	// distance 0.
	out = run(t, client, "-addr", addr, "-key", keyFile, "-max-level", "4",
		"-op", "approx", "-data", data, "-query", "5", "-k", "3", "-cand", "50")
	if !strings.Contains(out, "approx-knn: 3 results") || !strings.Contains(out, "id=5") {
		t.Fatalf("approx output: %s", out)
	}

	// Precise k-NN and range.
	out = run(t, client, "-addr", addr, "-key", keyFile, "-max-level", "4",
		"-op", "knn", "-data", data, "-query", "5", "-k", "2", "-cand", "50")
	if !strings.Contains(out, "knn: 2 results") {
		t.Fatalf("knn output: %s", out)
	}
	out = run(t, client, "-addr", addr, "-key", keyFile, "-max-level", "4",
		"-op", "range", "-data", data, "-query", "5", "-radius", "10")
	if !strings.Contains(out, "range:") {
		t.Fatalf("range output: %s", out)
	}
}

func TestCommandLinePlainPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bins := buildTools(t)
	work := t.TempDir()
	data := filepath.Join(work, "demo.simcdat")
	keyFile := filepath.Join(work, "demo.key")
	run(t, filepath.Join(bins, "simdatagen"),
		"-name", "clustered", "-n", "300", "-dim", "6", "-clusters", "4",
		"-dist", "L1", "-seed", "9", "-out", data)
	run(t, filepath.Join(bins, "simkeygen"),
		"-data", data, "-pivots", "8", "-out", keyFile)

	addr := freePort(t)
	srv := exec.Command(filepath.Join(bins, "simserver"),
		"-mode", "plain", "-addr", addr, "-key", keyFile, "-max-level", "4")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitListening(t, addr)

	client := filepath.Join(bins, "simclient")
	out := run(t, client, "-addr", addr, "-plain", "-op", "insert", "-data", data)
	if !strings.Contains(out, "inserted 300 objects") {
		t.Fatalf("insert output: %s", out)
	}
	out = run(t, client, "-addr", addr, "-plain",
		"-op", "knn", "-data", data, "-query", "7", "-k", "4")
	if !strings.Contains(out, "knn: 4 results") || !strings.Contains(out, "id=7") {
		t.Fatalf("knn output: %s", out)
	}
}

// TestCommandLineSnapshotRestart verifies the server restart story: an
// encrypted disk-backed server saves its index on SIGTERM and restores it
// on the next start, so clients query without re-ingesting.
func TestCommandLineSnapshotRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bins := buildTools(t)
	work := t.TempDir()
	data := filepath.Join(work, "demo.simcdat")
	keyFile := filepath.Join(work, "demo.key")
	buckets := filepath.Join(work, "buckets")
	snap := filepath.Join(work, "index.snap")

	run(t, filepath.Join(bins, "simdatagen"),
		"-name", "clustered", "-n", "500", "-dim", "6", "-clusters", "5",
		"-dist", "L2", "-seed", "4", "-out", data)
	run(t, filepath.Join(bins, "simkeygen"),
		"-data", data, "-pivots", "10", "-out", keyFile)

	startSrv := func(addr string) *exec.Cmd {
		srv := exec.Command(filepath.Join(bins, "simserver"),
			"-mode", "encrypted", "-addr", addr, "-pivots", "10", "-max-level", "4",
			"-storage", "disk", "-disk-path", buckets, "-snapshot", snap)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		waitListening(t, addr)
		return srv
	}

	addr := freePort(t)
	srv := startSrv(addr)
	client := filepath.Join(bins, "simclient")
	run(t, client, "-addr", addr, "-key", keyFile, "-max-level", "4",
		"-op", "insert", "-data", data)

	// Graceful shutdown saves the snapshot.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("server exit: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	// Restart on a fresh port: the index must be there without re-insert.
	addr2 := freePort(t)
	srv2 := startSrv(addr2)
	defer func() {
		srv2.Process.Kill()
		srv2.Wait()
	}()
	out := run(t, client, "-addr", addr2, "-key", keyFile, "-max-level", "4",
		"-op", "approx", "-data", data, "-query", "8", "-k", "3", "-cand", "50")
	if !strings.Contains(out, "approx-knn: 3 results") || !strings.Contains(out, "id=8") {
		t.Fatalf("post-restart query output: %s", out)
	}
}

func TestSimbenchTables1And2(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bins := buildTools(t)
	out := run(t, filepath.Join(bins, "simbench"), "-table", "1")
	for _, want := range []string{"YEAST", "2882", "HUMAN", "4026", "CoPhIR"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing %q:\n%s", want, out)
		}
	}
	out = run(t, filepath.Join(bins, "simbench"), "-table", "2")
	if !strings.Contains(out, "disk") || !strings.Contains(out, "100") {
		t.Fatalf("table 2 output:\n%s", out)
	}
}

// TestCommandLineClusterPipeline drives the multi-node deployment story of
// the README: three simserver nodes, a simcoord federating them, and the
// unchanged simclient talking to the coordinator's address.
func TestCommandLineClusterPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bins := buildTools(t)
	work := t.TempDir()
	data := filepath.Join(work, "demo.simcdat")
	keyFile := filepath.Join(work, "demo.key")
	run(t, filepath.Join(bins, "simdatagen"),
		"-name", "clustered", "-n", "600", "-dim", "8", "-clusters", "5",
		"-dist", "L2", "-seed", "11", "-out", data)
	run(t, filepath.Join(bins, "simkeygen"),
		"-data", data, "-pivots", "10", "-out", keyFile)

	// Three encrypted nodes; multi-node clusters require -eager-root-split.
	var nodeAddrs []string
	for range 3 {
		addr := freePort(t)
		srv := exec.Command(filepath.Join(bins, "simserver"),
			"-mode", "encrypted", "-addr", addr, "-pivots", "10", "-max-level", "4",
			"-eager-root-split")
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			srv.Process.Kill()
			srv.Wait()
		}()
		waitListening(t, addr)
		nodeAddrs = append(nodeAddrs, addr)
	}

	coordAddr := freePort(t)
	coord := exec.Command(filepath.Join(bins, "simcoord"),
		"-addr", coordAddr, "-nodes", strings.Join(nodeAddrs, ","))
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		coord.Process.Kill()
		coord.Wait()
	}()
	waitListening(t, coordAddr)

	// The unchanged client sees one similarity cloud.
	client := filepath.Join(bins, "simclient")
	out := run(t, client, "-addr", coordAddr, "-key", keyFile, "-max-level", "4",
		"-op", "insert", "-data", data)
	if !strings.Contains(out, "inserted 600 encrypted objects") {
		t.Fatalf("insert output: %s", out)
	}
	out = run(t, client, "-addr", coordAddr, "-key", keyFile, "-max-level", "4",
		"-op", "approx", "-data", data, "-query", "5", "-k", "3", "-cand", "60")
	if !strings.Contains(out, "approx-knn: 3 results") || !strings.Contains(out, "id=5") {
		t.Fatalf("approx output: %s", out)
	}
	out = run(t, client, "-addr", coordAddr, "-key", keyFile, "-max-level", "4",
		"-op", "delete", "-data", data, "-from", "5", "-to", "6")
	if !strings.Contains(out, "deleted 1") {
		t.Fatalf("delete output: %s", out)
	}
}

// TestCommandLineGatewayPipeline is the HTTP deployment story end to end:
// a simgate process serving demo tenants, driven by simbench's open-loop
// generator over real sockets, then scraped — the CI gateway-e2e job in
// Go-test form.
func TestCommandLineGatewayPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bins := buildTools(t)
	work := t.TempDir()

	addr := freePort(t)
	gate := exec.Command(filepath.Join(bins, "simgate"),
		"-addr", addr, "-tenants", "smoke=smoke-key", "-n", "500")
	if err := gate.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		gate.Process.Kill()
		gate.Wait()
	}()
	waitListening(t, addr)

	// Open-loop run: ~2s at 100 q/s, JSON report to a file.
	jsonPath := filepath.Join(work, "openloop.json")
	out := run(t, filepath.Join(bins, "simbench"),
		"-openloop", "-gateway", "http://"+addr, "-apikey", "smoke-key",
		"-qps", "100", "-conns", "4", "-duration", "2s", "-k", "5", "-json", jsonPath)
	if !strings.Contains(out, "Open-loop load test") {
		t.Fatalf("openloop output: %s", out)
	}

	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []struct {
			Iterations int64              `json:"iterations"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"results"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("openloop JSON: %v\n%s", err, blob)
	}
	if len(doc.Results) != 1 {
		t.Fatalf("openloop JSON has %d results, want 1", len(doc.Results))
	}
	m := doc.Results[0].Metrics
	if m["achieved_qps"] <= 0 {
		t.Fatalf("achieved_qps %v, want > 0", m["achieved_qps"])
	}
	if m["errors"] != 0 {
		t.Fatalf("open-loop run hit %v errors", m["errors"])
	}
	if m["p50_ms"] <= 0 || m["p999_ms"] < m["p99_ms"] || m["p99_ms"] < m["p50_ms"] {
		t.Fatalf("implausible percentiles: p50=%v p99=%v p999=%v", m["p50_ms"], m["p99_ms"], m["p999_ms"])
	}

	// The gateway's request counter must agree with the generator: every
	// served query plus the warm-up request.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`simgate_requests_total{tenant="smoke",code="200"} %d`, int64(m["ok"])+1)
	if !strings.Contains(string(metrics), want) {
		t.Fatalf("metrics missing %q:\n%s", want, metrics)
	}
}
