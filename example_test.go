package simcloud_test

import (
	"context"
	"fmt"
	"log"

	"simcloud"
)

// Example demonstrates the complete outsourced-search flow of the package
// comment: generate a key, start an encrypted server, insert, search.
// Everything is deterministic (seeded), so the output is stable.
func Example() {
	data := simcloud.ClusteredData(1, 500, 8, 5, simcloud.L2())
	pivots := simcloud.SelectPivots(1, data.Dist, data.Objects, 12)
	key, err := simcloud.GenerateKey(pivots)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := simcloud.NewEncryptedServer(simcloud.DefaultConfig(12))
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	client, err := simcloud.DialEncrypted(srv.Addr(), key, simcloud.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Insert(data.Objects); err != nil {
		log.Fatal(err)
	}

	// The query object is indexed, so it is its own nearest neighbor.
	results, _, err := client.Search(context.Background(), simcloud.Query{
		Kind: simcloud.KindApproxKNN, Vec: data.Objects[42].Vec, K: 3, CandSize: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results: %d\n", len(results))
	fmt.Printf("nearest: id=%d dist=%.1f\n", results[0].ID, results[0].Dist)
	// Output:
	// results: 3
	// nearest: id=42 dist=0.0
}

// ExampleRecall shows the recall measure of the paper's Section 4.1.
func ExampleRecall() {
	approximate := []uint64{1, 2, 3, 7, 9}
	exact := []uint64{1, 2, 3, 4, 5}
	fmt.Printf("%.0f%%\n", simcloud.Recall(approximate, exact))
	// Output: 60%
}

// ExampleMarshalKey shows key distribution to an authorized client.
func ExampleMarshalKey() {
	data := simcloud.ClusteredData(2, 100, 4, 3, simcloud.L1())
	key, err := simcloud.GenerateKey(simcloud.SelectPivots(2, data.Dist, data.Objects, 8))
	if err != nil {
		log.Fatal(err)
	}
	blob, err := simcloud.MarshalKey(key)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := simcloud.UnmarshalKey(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(restored.Pivots().N(), "pivots under", restored.Pivots().Dist.Name())
	// Output: 8 pivots under L1
}
